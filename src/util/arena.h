// Bump allocation for the columnar hot path.
//
// U32Arena is a contiguous store of 32-bit words that only grows at the
// tail and resets in O(1) between epochs (capacity is retained, so a
// steady-state round performs zero heap allocations). Consumers stage a
// run of words at the tail, then either commit it (keeping its offset)
// or rewind; committed runs are addressed by (offset, length) because
// the backing vector may reallocate while later runs are staged — spans
// are materialized on read, when the buffer is stable.
//
// This is transient *representation* storage, not streaming "space":
// algorithms keep charging their SpaceTracker in logical words exactly
// as before, so the reported accounting is independent of how the words
// are laid out.

#ifndef STREAMCOVER_UTIL_ARENA_H_
#define STREAMCOVER_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace streamcover {

/// Epoch-reset bump store of uint32 words.
class U32Arena {
 public:
  /// Current tail position; the staging mark for the next run.
  size_t size() const { return words_.size(); }
  bool empty() const { return words_.empty(); }

  /// Appends one word at the tail.
  void Push(uint32_t word) { words_.push_back(word); }

  /// Grows the tail by `count` words and returns a pointer to the first
  /// new word — the bulk-staging entry the branch-free kernels write
  /// through (store always, advance conditionally). Pair with
  /// RewindTo(mark + kept) to drop the unused tail; the pointer is
  /// valid until the next growth or reset.
  uint32_t* Extend(size_t count) {
    words_.resize(words_.size() + count);
    return words_.data() + (words_.size() - count);
  }

  /// Drops every word at or after `mark` (abandons a staged run).
  void RewindTo(size_t mark) {
    SC_DCHECK_LE(mark, words_.size());
    words_.resize(mark);
  }

  /// The words in [offset, offset + length). Valid until the next Push
  /// or reset.
  std::span<const uint32_t> SpanAt(size_t offset, size_t length) const {
    SC_DCHECK_LE(offset + length, words_.size());
    return {words_.data() + offset, length};
  }

  /// The staged tail run starting at `mark`.
  std::span<const uint32_t> TailFrom(size_t mark) const {
    return SpanAt(mark, words_.size() - mark);
  }

  /// O(1) epoch reset: drops all content, keeps capacity, bumps the
  /// epoch counter.
  void ResetEpoch() {
    words_.clear();
    ++epoch_;
  }

  /// Number of ResetEpoch calls so far.
  uint64_t epoch() const { return epoch_; }

 private:
  std::vector<uint32_t> words_;
  uint64_t epoch_ = 0;
};

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_ARENA_H_
