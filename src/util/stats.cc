#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace streamcover {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  SC_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double LogLogSlope(const std::vector<double>& x,
                   const std::vector<double>& y) {
  SC_CHECK_EQ(x.size(), y.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    double lx = std::log(x[i]);
    double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  double dn = static_cast<double>(n);
  double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (dn * sxy - sx * sy) / denom;
}

}  // namespace streamcover
