#include "util/latency_histogram.h"

#include <cmath>

namespace streamcover {

int LatencyHistogram::BucketFor(double micros) {
  if (!(micros > 1.0)) return 0;  // also catches NaN
  // log2(us) * sub-buckets, floored: geometric boundaries at
  // 2^(i / kSubBucketsPerOctave) microseconds.
  const double idx =
      std::floor(std::log2(micros) * kSubBucketsPerOctave);
  if (idx >= kNumBuckets - 1) return kNumBuckets - 1;
  return static_cast<int>(idx) + 1;
}

double LatencyHistogram::BucketUpperMillis(int bucket) {
  if (bucket <= 0) return 1e-3;  // the 1us floor
  return std::exp2(static_cast<double>(bucket) / kSubBucketsPerOctave) *
         1e-3;
}

void LatencyHistogram::Record(double millis) {
  const double micros = millis > 0 ? millis * 1e3 : 0.0;
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const auto whole = static_cast<uint64_t>(micros);
  total_micros_.fetch_add(whole, std::memory_order_relaxed);
  uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (whole > seen && !max_micros_.compare_exchange_weak(
                             seen, whole, std::memory_order_relaxed)) {
  }
}

LatencySnapshot LatencyHistogram::TakeSnapshot() const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  LatencySnapshot snap;
  snap.count = total;
  if (total == 0) return snap;
  snap.max_ms =
      static_cast<double>(max_micros_.load(std::memory_order_relaxed)) *
      1e-3;
  snap.mean_ms = static_cast<double>(
                     total_micros_.load(std::memory_order_relaxed)) *
                 1e-3 / static_cast<double>(total);
  // Walk the cumulative distribution once for all three quantiles.
  const double targets[3] = {0.50, 0.90, 0.99};
  double* cells[3] = {&snap.p50_ms, &snap.p90_ms, &snap.p99_ms};
  uint64_t cumulative = 0;
  int t = 0;
  for (int i = 0; i < kNumBuckets && t < 3; ++i) {
    cumulative += counts[i];
    while (t < 3 && static_cast<double>(cumulative) >=
                        targets[t] * static_cast<double>(total)) {
      *cells[t] = BucketUpperMillis(i);
      ++t;
    }
  }
  return snap;
}

}  // namespace streamcover
