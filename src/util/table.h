// Markdown table printer for benchmark output.
//
// Every bench binary mirrors its paper table/figure as a GitHub-markdown
// table so that bench_output.txt can be pasted into EXPERIMENTS.md
// verbatim.

#ifndef STREAMCOVER_UTIL_TABLE_H_
#define STREAMCOVER_UTIL_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace streamcover {

/// Column-aligned markdown table. Usage:
///   Table t({"algo", "passes", "space"});
///   t.AddRow({"greedy", "1", "123456"});
///   t.Print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Formatting helpers for mixed-type rows.
  static std::string Fmt(int64_t v);
  static std::string Fmt(uint64_t v);
  static std::string Fmt(int v) { return Fmt(static_cast<int64_t>(v)); }
  static std::string Fmt(unsigned v) {
    return Fmt(static_cast<uint64_t>(v));
  }
  static std::string Fmt(double v, int precision = 2);

  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_TABLE_H_
