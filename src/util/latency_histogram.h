// Log-bucketed latency histogram for the serving layer.
//
// HDR-style: bucket boundaries grow geometrically (factor 2^(1/8), so
// every reported quantile is within ~9% of the true value), counters
// are relaxed atomics, and Record never allocates or locks — worker
// threads on the serve hot path stamp a completed request with one
// fetch_add. Snapshots fold the buckets into the p50/p90/p99/max cells
// of the `{"op":"stats"}` endpoint and BENCH_serve.json.
//
// Thread-safety: Record is wait-free and safe from any thread.
// TakeSnapshot reads concurrently-updated counters without
// synchronization barriers — a snapshot taken during traffic is a
// consistent-enough view for monitoring, the usual histogram contract.

#ifndef STREAMCOVER_UTIL_LATENCY_HISTOGRAM_H_
#define STREAMCOVER_UTIL_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <cstdint>

namespace streamcover {

/// Aggregated view of a histogram at one instant.
struct LatencySnapshot {
  uint64_t count = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  double mean_ms = 0;
};

/// Fixed-size log-bucketed histogram over [1us, ~1000s]. Values below
/// the floor land in bucket 0; values above the ceiling clamp to the
/// last bucket (and still drive max exactly).
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample. Wait-free; safe from any thread.
  void Record(double millis);

  /// Folds the current counters into quantiles. Quantiles are bucket
  /// upper bounds (<= 2^(1/8) above the true value); max is exact.
  LatencySnapshot TakeSnapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  // 2^(1/8) growth from 1us: 8 sub-buckets per octave, 30 octaves
  // covers 1us..2^30us ≈ 18 minutes per bucket run; 248 buckets total.
  static constexpr int kSubBucketsPerOctave = 8;
  static constexpr int kOctaves = 31;
  static constexpr int kNumBuckets = kSubBucketsPerOctave * kOctaves;

  static int BucketFor(double micros);
  static double BucketUpperMillis(int bucket);

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
};

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_LATENCY_HISTOGRAM_H_
