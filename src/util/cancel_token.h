// Cooperative cancellation with deadlines.
//
// The serving layer (src/serve/) answers each request under a latency
// budget; the paper's solvers are multi-pass loops that cannot be
// preempted safely mid-update. A CancelToken bridges the two the way
// tarantool's box_timeout does: the owner arms a wall-clock deadline (or
// fires Cancel() by hand during drain), and the solver's scan path polls
// cancelled() at batch granularity — every few hundred sets inside
// SetSource::Scan (stream/set_source.h) — and unwinds through the
// existing stream-failure contract with the sticky error
// `kDeadlineExceededError`. Nothing is ever killed mid-write, so a
// cancelled run leaves shared instances untouched and the worker thread
// immediately reusable.
//
// Thread-safety: Cancel() and cancelled() may race freely (atomic flag,
// immutable deadline). One token serves exactly one run; tokens are
// neither copyable nor reusable across requests.

#ifndef STREAMCOVER_UTIL_CANCEL_TOKEN_H_
#define STREAMCOVER_UTIL_CANCEL_TOKEN_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace streamcover {

/// The sticky SetSource/RunResult error a deadline-cancelled run
/// surfaces. Exactly this string, with no path or set prefix, so
/// dispatchers and clients can match it as an error *code*.
inline constexpr const char kDeadlineExceededError[] = "deadline_exceeded";

/// A manually fireable cancellation flag with an optional monotonic
/// deadline. Checks are cheap: one relaxed atomic load, plus one
/// steady_clock read when a deadline is armed.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline; fires only via Cancel().
  CancelToken() = default;

  /// Fires at `deadline` (or earlier via Cancel()).
  explicit CancelToken(Clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  /// Fires `ms` milliseconds from now. ms <= 0 is already expired —
  /// the idiom for "this request's budget was spent in the queue".
  static CancelToken AfterMillis(int64_t ms) {
    return CancelToken(Clock::now() + std::chrono::milliseconds(ms));
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Fires the token by hand (drain, client disconnect). Idempotent;
  /// safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() ran or the deadline passed. Monotonic: never
  /// reverts to false.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if (Clock::now() < deadline_) return false;
    // Latch the verdict so later polls skip the clock read.
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }

  bool has_deadline() const { return has_deadline_; }

  /// Milliseconds until the deadline (negative once past); 0 budget
  /// semantics are the caller's. Meaningless without a deadline.
  double RemainingMillis() const {
    return std::chrono::duration<double, std::milli>(deadline_ -
                                                     Clock::now())
        .count();
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_CANCEL_TOKEN_H_
