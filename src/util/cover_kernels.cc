#include "util/cover_kernels.h"

#include <cstdlib>

#include "util/check.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace streamcover {
namespace {

// The word paths read the mask's backing words directly: one aligned
// 64-bit load answers an element's membership with a shift/AND, and the
// data-dependent branch of the scalar twin (taken ~p of the time at
// mask density p — the misprediction tax the kernels exist to remove)
// becomes straight-line arithmetic. The loops are deliberately simple
// enough for the compiler to unroll and, where profitable, vectorize
// (gather + compress on wide ISAs); the -O3 CI leg pins them
// warnings-clean.

inline uint64_t Bit(std::span<const uint64_t> words, uint32_t e) {
  SC_DCHECK_LT(static_cast<size_t>(e) >> 6, words.size());
  return (words[static_cast<size_t>(e) >> 6] >> (e & 63u)) & 1u;
}

// Branch-free masked compaction: stores every element, advances the
// write cursor only for survivors. `dst` must have room for
// elems.size() words.
inline size_t CompactInto(std::span<const uint32_t> elems,
                          std::span<const uint64_t> words, uint32_t* dst) {
  size_t kept = 0;
  for (uint32_t e : elems) {
    dst[kept] = e;
    kept += static_cast<size_t>(Bit(words, e));
  }
  return kept;
}

// --- Dense kernel variants ----------------------------------------------

// Portable word-loop twins. Four accumulators for the popcount, same
// rationale as the sparse CountUncovered.
size_t CountDenseWord(std::span<const uint64_t> row,
                      std::span<const uint64_t> mask) {
  const size_t n = row.size();
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    c0 += static_cast<uint64_t>(__builtin_popcountll(row[w] & mask[w]));
    c1 += static_cast<uint64_t>(
        __builtin_popcountll(row[w + 1] & mask[w + 1]));
    c2 += static_cast<uint64_t>(
        __builtin_popcountll(row[w + 2] & mask[w + 2]));
    c3 += static_cast<uint64_t>(
        __builtin_popcountll(row[w + 3] & mask[w + 3]));
  }
  for (; w < n; ++w) {
    c0 += static_cast<uint64_t>(__builtin_popcountll(row[w] & mask[w]));
  }
  return static_cast<size_t>(c0 + c1 + c2 + c3);
}

size_t MarkDenseWord(std::span<const uint64_t> row,
                     std::span<uint64_t> mask) {
  size_t cleared = 0;
  for (size_t w = 0; w < row.size(); ++w) {
    cleared += static_cast<size_t>(__builtin_popcountll(row[w] & mask[w]));
    mask[w] &= ~row[w];
  }
  return cleared;
}

#if defined(__x86_64__)

// AVX2 AND+popcount via the vpshufb nibble-LUT: each byte of the
// intersection indexes a 16-entry bit-count table, vpsadbw folds the 32
// per-byte counts into 4 qword lanes. ~4 words per iteration.
__attribute__((target("avx2"))) size_t CountDenseAvx2(
    std::span<const uint64_t> row, std::span<const uint64_t> mask) {
  const size_t n = row.size();
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nibble = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&row[w])),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&mask[w])));
    const __m256i lo = _mm256_and_si256(v, low_nibble);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi32(v, 4), low_nibble);
    const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                           _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(counts, _mm256_setzero_si256()));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; w < n; ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(row[w] & mask[w]));
  }
  return static_cast<size_t>(total);
}

__attribute__((target("avx2"))) size_t MarkDenseAvx2(
    std::span<const uint64_t> row, std::span<uint64_t> mask) {
  const size_t n = row.size();
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nibble = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&row[w]));
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&mask[w]));
    const __m256i v = _mm256_and_si256(r, m);
    const __m256i lo = _mm256_and_si256(v, low_nibble);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi32(v, 4), low_nibble);
    const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                           _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(counts, _mm256_setzero_si256()));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&mask[w]),
                        _mm256_andnot_si256(r, m));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t cleared = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; w < n; ++w) {
    cleared +=
        static_cast<uint64_t>(__builtin_popcountll(row[w] & mask[w]));
    mask[w] &= ~row[w];
  }
  return static_cast<size_t>(cleared);
}

// AVX-512 with the native per-qword popcount (VPOPCNTDQ): 8 words per
// iteration, one AND + one vpopcntq + one accumulate.
//
// GCC's avx512fintrin.h implements several intrinsics (andnot among
// them) via _mm512_undefined_epi32, whose deliberate self-init trips
// -Wmaybe-uninitialized under -Werror; silence it for this block only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f,avx512vpopcntdq"))) size_t CountDenseAvx512(
    std::span<const uint64_t> row, std::span<const uint64_t> mask) {
  const size_t n = row.size();
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= n; w += 8) {
    const __m512i v = _mm512_and_si512(
        _mm512_loadu_si512(reinterpret_cast<const void*>(&row[w])),
        _mm512_loadu_si512(reinterpret_cast<const void*>(&mask[w])));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  // Manual lane sum: _mm512_reduce_add_epi64 trips GCC's spurious
  // -Wuninitialized inside the intrinsic header under -Werror.
  uint64_t lanes[8];
  _mm512_storeu_si512(reinterpret_cast<void*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
                   lanes[5] + lanes[6] + lanes[7];
  for (; w < n; ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(row[w] & mask[w]));
  }
  return static_cast<size_t>(total);
}

__attribute__((target("avx512f,avx512vpopcntdq"))) size_t MarkDenseAvx512(
    std::span<const uint64_t> row, std::span<uint64_t> mask) {
  const size_t n = row.size();
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= n; w += 8) {
    const __m512i r =
        _mm512_loadu_si512(reinterpret_cast<const void*>(&row[w]));
    const __m512i m =
        _mm512_loadu_si512(reinterpret_cast<const void*>(&mask[w]));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(r, m)));
    _mm512_storeu_si512(reinterpret_cast<void*>(&mask[w]),
                        _mm512_andnot_si512(r, m));
  }
  uint64_t lanes[8];
  _mm512_storeu_si512(reinterpret_cast<void*>(lanes), acc);
  uint64_t cleared = lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
                     lanes[5] + lanes[6] + lanes[7];
  for (; w < n; ++w) {
    cleared +=
        static_cast<uint64_t>(__builtin_popcountll(row[w] & mask[w]));
    mask[w] &= ~row[w];
  }
  return static_cast<size_t>(cleared);
}
#pragma GCC diagnostic pop

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }
bool CpuHasAvx512() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512vpopcntdq") != 0;
}

#else  // !defined(__x86_64__)

bool CpuHasAvx2() { return false; }
bool CpuHasAvx512() { return false; }

#endif  // defined(__x86_64__)

KernelIsa ProbeKernelIsa() {
  const char* force = std::getenv("STREAMCOVER_FORCE_SCALAR_ISA");
  if (force != nullptr && force[0] == '1') return KernelIsa::kWord;
  if (CpuHasAvx512()) return KernelIsa::kAvx512;
  if (CpuHasAvx2()) return KernelIsa::kAvx2;
  return KernelIsa::kWord;
}

// Scalar dense twins: walk the row's set bits and consult the mask one
// element at a time — the reference the word/SIMD paths are fuzzed
// against.
size_t CountDenseScalar(std::span<const uint64_t> row,
                        const DynamicBitset& mask) {
  size_t count = 0;
  for (size_t w = 0; w < row.size(); ++w) {
    uint64_t bits = row[w];
    while (bits != 0) {
      const uint32_t e = static_cast<uint32_t>(
          w * 64 + static_cast<size_t>(__builtin_ctzll(bits)));
      if (mask.Test(e)) ++count;
      bits &= bits - 1;
    }
  }
  return count;
}

}  // namespace

const char* KernelPolicyName(KernelPolicy policy) {
  switch (policy) {
    case KernelPolicy::kScalar:
      return "scalar";
    case KernelPolicy::kWord:
      return "word";
    case KernelPolicy::kAuto:
      return "auto";
  }
  return "word";
}

std::optional<KernelPolicy> ParseKernelPolicy(std::string_view name) {
  if (name == "scalar") return KernelPolicy::kScalar;
  if (name == "word") return KernelPolicy::kWord;
  if (name == "auto") return KernelPolicy::kAuto;
  return std::nullopt;
}

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kWord:
      return "word";
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kAvx512:
      return "avx512";
  }
  return "word";
}

KernelIsa DetectKernelIsa() {
  static const KernelIsa isa = ProbeKernelIsa();
  return isa;
}

std::vector<KernelIsa> SupportedKernelIsas() {
  std::vector<KernelIsa> isas{KernelIsa::kWord};
  if (CpuHasAvx2()) isas.push_back(KernelIsa::kAvx2);
  if (CpuHasAvx512()) isas.push_back(KernelIsa::kAvx512);
  return isas;
}

size_t CountUncovered(std::span<const uint32_t> elems,
                      const DynamicBitset& mask, KernelPolicy policy) {
  if (policy == KernelPolicy::kScalar) {
    size_t count = 0;
    for (uint32_t e : elems) {
      if (mask.Test(e)) ++count;
    }
    return count;
  }
  // Four independent accumulators keep the adds off the critical path;
  // the remainder tail is at most 3 elements.
  const std::span<const uint64_t> words = mask.Words();
  const size_t n = elems.size();
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += Bit(words, elems[i]);
    c1 += Bit(words, elems[i + 1]);
    c2 += Bit(words, elems[i + 2]);
    c3 += Bit(words, elems[i + 3]);
  }
  for (; i < n; ++i) c0 += Bit(words, elems[i]);
  return static_cast<size_t>(c0 + c1 + c2 + c3);
}

size_t FilterInto(std::span<const uint32_t> elems, const DynamicBitset& mask,
                  U32Arena& arena, KernelPolicy policy) {
  if (policy == KernelPolicy::kScalar) {
    size_t kept = 0;
    for (uint32_t e : elems) {
      if (mask.Test(e)) {
        arena.Push(e);
        ++kept;
      }
    }
    return kept;
  }
  const size_t mark = arena.size();
  const size_t kept = CompactInto(elems, mask.Words(), arena.Extend(elems.size()));
  arena.RewindTo(mark + kept);
  return kept;
}

size_t FilterInto(std::span<const uint32_t> elems, const DynamicBitset& mask,
                  std::vector<uint32_t>& out, KernelPolicy policy) {
  if (policy == KernelPolicy::kScalar) {
    size_t kept = 0;
    for (uint32_t e : elems) {
      if (mask.Test(e)) {
        out.push_back(e);
        ++kept;
      }
    }
    return kept;
  }
  const size_t mark = out.size();
  out.resize(mark + elems.size());
  const size_t kept = CompactInto(elems, mask.Words(), out.data() + mark);
  out.resize(mark + kept);
  return kept;
}

size_t MarkCovered(std::span<const uint32_t> elems, DynamicBitset& mask,
                   KernelPolicy policy) {
  if (policy == KernelPolicy::kScalar) {
    size_t cleared = 0;
    for (uint32_t e : elems) {
      if (mask.Test(e)) {
        mask.Reset(e);
        ++cleared;
      }
    }
    return cleared;
  }
  // Unconditional read-modify-write: clearing an already-clear bit is
  // a no-op, so the store needs no guard.
  std::span<uint64_t> words = mask.MutableWords();
  size_t cleared = 0;
  for (uint32_t e : elems) {
    const size_t w = static_cast<size_t>(e) >> 6;
    SC_DCHECK_LT(w, words.size());
    const uint64_t bit = uint64_t{1} << (e & 63u);
    cleared += static_cast<size_t>((words[w] & bit) != 0);
    words[w] &= ~bit;
  }
  return cleared;
}

bool Intersects(std::span<const uint32_t> elems, const DynamicBitset& mask,
                KernelPolicy policy) {
  if (policy == KernelPolicy::kScalar) {
    for (uint32_t e : elems) {
      if (mask.Test(e)) return true;
    }
    return false;
  }
  // Branch once per block of 16 instead of once per element; the OR
  // accumulation inside a block is branch-free, and the early exit
  // still fires within 16 elements of the first hit.
  const std::span<const uint64_t> words = mask.Words();
  const size_t n = elems.size();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint64_t any = 0;
    for (size_t j = 0; j < 16; ++j) any |= Bit(words, elems[i + j]);
    if (any != 0) return true;
  }
  uint64_t any = 0;
  for (; i < n; ++i) any |= Bit(words, elems[i]);
  return any != 0;
}

// --- BitsetCSR ----------------------------------------------------------

BitsetCSR::BitsetCSR(uint32_t num_elements)
    : num_elements_(num_elements),
      words_per_row_((static_cast<size_t>(num_elements) + 63) / 64) {}

uint32_t BitsetCSR::AddRow(std::span<const uint32_t> elems) {
  const size_t base = words_.size();
  words_.resize(base + words_per_row_, 0);
  for (uint32_t e : elems) {
    SC_DCHECK_LT(e, num_elements_);
    words_[base + (static_cast<size_t>(e) >> 6)] |= uint64_t{1} << (e & 63u);
  }
  return rows_++;
}

std::span<const uint64_t> BitsetCSR::Row(uint32_t row) const {
  SC_DCHECK_LT(row, rows_);
  return std::span<const uint64_t>(words_)
      .subspan(static_cast<size_t>(row) * words_per_row_, words_per_row_);
}

// --- Dense kernels ------------------------------------------------------

size_t CountUncoveredDenseIsa(std::span<const uint64_t> row,
                              std::span<const uint64_t> mask,
                              KernelIsa isa) {
  SC_DCHECK_EQ(row.size(), mask.size());
#if defined(__x86_64__)
  if (isa == KernelIsa::kAvx512) return CountDenseAvx512(row, mask);
  if (isa == KernelIsa::kAvx2) return CountDenseAvx2(row, mask);
#endif
  (void)isa;
  return CountDenseWord(row, mask);
}

size_t MarkCoveredDenseIsa(std::span<const uint64_t> row,
                           std::span<uint64_t> mask, KernelIsa isa) {
  SC_DCHECK_EQ(row.size(), mask.size());
#if defined(__x86_64__)
  if (isa == KernelIsa::kAvx512) return MarkDenseAvx512(row, mask);
  if (isa == KernelIsa::kAvx2) return MarkDenseAvx2(row, mask);
#endif
  (void)isa;
  return MarkDenseWord(row, mask);
}

size_t CountUncoveredDense(std::span<const uint64_t> row,
                           const DynamicBitset& mask, KernelPolicy policy) {
  SC_DCHECK_EQ(row.size(), mask.WordCount());
  switch (policy) {
    case KernelPolicy::kScalar:
      return CountDenseScalar(row, mask);
    case KernelPolicy::kWord:
      return CountDenseWord(row, mask.Words());
    case KernelPolicy::kAuto:
      return CountUncoveredDenseIsa(row, mask.Words(), DetectKernelIsa());
  }
  return CountDenseWord(row, mask.Words());
}

size_t FilterIntoDense(std::span<const uint64_t> row,
                       const DynamicBitset& mask, std::vector<uint32_t>& out,
                       KernelPolicy policy) {
  SC_DCHECK_EQ(row.size(), mask.WordCount());
  if (policy == KernelPolicy::kScalar) {
    size_t kept = 0;
    for (size_t w = 0; w < row.size(); ++w) {
      uint64_t bits = row[w];
      while (bits != 0) {
        const uint32_t e = static_cast<uint32_t>(
            w * 64 + static_cast<size_t>(__builtin_ctzll(bits)));
        if (mask.Test(e)) {
          out.push_back(e);
          ++kept;
        }
        bits &= bits - 1;
      }
    }
    return kept;
  }
  // The extraction is inherently a bit-scan, so kWord and kAuto share
  // one path: AND per word, then ctz-walk only the surviving bits.
  const std::span<const uint64_t> words = mask.Words();
  size_t kept = 0;
  for (size_t w = 0; w < row.size(); ++w) {
    uint64_t bits = row[w] & words[w];
    kept += static_cast<size_t>(__builtin_popcountll(bits));
    while (bits != 0) {
      out.push_back(static_cast<uint32_t>(
          w * 64 + static_cast<size_t>(__builtin_ctzll(bits))));
      bits &= bits - 1;
    }
  }
  return kept;
}

size_t MarkCoveredDense(std::span<const uint64_t> row, DynamicBitset& mask,
                        KernelPolicy policy) {
  SC_DCHECK_EQ(row.size(), mask.WordCount());
  switch (policy) {
    case KernelPolicy::kScalar: {
      size_t cleared = 0;
      for (size_t w = 0; w < row.size(); ++w) {
        uint64_t bits = row[w];
        while (bits != 0) {
          const uint32_t e = static_cast<uint32_t>(
              w * 64 + static_cast<size_t>(__builtin_ctzll(bits)));
          if (mask.Test(e)) {
            mask.Reset(e);
            ++cleared;
          }
          bits &= bits - 1;
        }
      }
      return cleared;
    }
    case KernelPolicy::kWord:
      return MarkDenseWord(row, mask.MutableWords());
    case KernelPolicy::kAuto:
      return MarkCoveredDenseIsa(row, mask.MutableWords(), DetectKernelIsa());
  }
  return MarkDenseWord(row, mask.MutableWords());
}

bool IntersectsDense(std::span<const uint64_t> row, const DynamicBitset& mask,
                     KernelPolicy policy) {
  SC_DCHECK_EQ(row.size(), mask.WordCount());
  if (policy == KernelPolicy::kScalar) {
    for (size_t w = 0; w < row.size(); ++w) {
      uint64_t bits = row[w];
      while (bits != 0) {
        const uint32_t e = static_cast<uint32_t>(
            w * 64 + static_cast<size_t>(__builtin_ctzll(bits)));
        if (mask.Test(e)) return true;
        bits &= bits - 1;
      }
    }
    return false;
  }
  const std::span<const uint64_t> words = mask.Words();
  for (size_t w = 0; w < row.size(); ++w) {
    if ((row[w] & words[w]) != 0) return true;
  }
  return false;
}

}  // namespace streamcover
