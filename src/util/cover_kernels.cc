#include "util/cover_kernels.h"

#include "util/check.h"

namespace streamcover {
namespace {

// The word paths read the mask's backing words directly: one aligned
// 64-bit load answers an element's membership with a shift/AND, and the
// data-dependent branch of the scalar twin (taken ~p of the time at
// mask density p — the misprediction tax the kernels exist to remove)
// becomes straight-line arithmetic. The loops are deliberately simple
// enough for the compiler to unroll and, where profitable, vectorize
// (gather + compress on wide ISAs); the -O3 CI leg pins them
// warnings-clean.

inline uint64_t Bit(std::span<const uint64_t> words, uint32_t e) {
  SC_DCHECK_LT(static_cast<size_t>(e) >> 6, words.size());
  return (words[static_cast<size_t>(e) >> 6] >> (e & 63u)) & 1u;
}

// Branch-free masked compaction: stores every element, advances the
// write cursor only for survivors. `dst` must have room for
// elems.size() words.
inline size_t CompactInto(std::span<const uint32_t> elems,
                          std::span<const uint64_t> words, uint32_t* dst) {
  size_t kept = 0;
  for (uint32_t e : elems) {
    dst[kept] = e;
    kept += static_cast<size_t>(Bit(words, e));
  }
  return kept;
}

}  // namespace

const char* KernelPolicyName(KernelPolicy policy) {
  return policy == KernelPolicy::kScalar ? "scalar" : "word";
}

std::optional<KernelPolicy> ParseKernelPolicy(std::string_view name) {
  if (name == "scalar") return KernelPolicy::kScalar;
  if (name == "word") return KernelPolicy::kWord;
  return std::nullopt;
}

size_t CountUncovered(std::span<const uint32_t> elems,
                      const DynamicBitset& mask, KernelPolicy policy) {
  if (policy == KernelPolicy::kScalar) {
    size_t count = 0;
    for (uint32_t e : elems) {
      if (mask.Test(e)) ++count;
    }
    return count;
  }
  // Four independent accumulators keep the adds off the critical path;
  // the remainder tail is at most 3 elements.
  const std::span<const uint64_t> words = mask.Words();
  const size_t n = elems.size();
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += Bit(words, elems[i]);
    c1 += Bit(words, elems[i + 1]);
    c2 += Bit(words, elems[i + 2]);
    c3 += Bit(words, elems[i + 3]);
  }
  for (; i < n; ++i) c0 += Bit(words, elems[i]);
  return static_cast<size_t>(c0 + c1 + c2 + c3);
}

size_t FilterInto(std::span<const uint32_t> elems, const DynamicBitset& mask,
                  U32Arena& arena, KernelPolicy policy) {
  if (policy == KernelPolicy::kScalar) {
    size_t kept = 0;
    for (uint32_t e : elems) {
      if (mask.Test(e)) {
        arena.Push(e);
        ++kept;
      }
    }
    return kept;
  }
  const size_t mark = arena.size();
  const size_t kept = CompactInto(elems, mask.Words(), arena.Extend(elems.size()));
  arena.RewindTo(mark + kept);
  return kept;
}

size_t FilterInto(std::span<const uint32_t> elems, const DynamicBitset& mask,
                  std::vector<uint32_t>& out, KernelPolicy policy) {
  if (policy == KernelPolicy::kScalar) {
    size_t kept = 0;
    for (uint32_t e : elems) {
      if (mask.Test(e)) {
        out.push_back(e);
        ++kept;
      }
    }
    return kept;
  }
  const size_t mark = out.size();
  out.resize(mark + elems.size());
  const size_t kept = CompactInto(elems, mask.Words(), out.data() + mark);
  out.resize(mark + kept);
  return kept;
}

size_t MarkCovered(std::span<const uint32_t> elems, DynamicBitset& mask,
                   KernelPolicy policy) {
  if (policy == KernelPolicy::kScalar) {
    size_t cleared = 0;
    for (uint32_t e : elems) {
      if (mask.Test(e)) {
        mask.Reset(e);
        ++cleared;
      }
    }
    return cleared;
  }
  // Unconditional read-modify-write: clearing an already-clear bit is
  // a no-op, so the store needs no guard.
  std::span<uint64_t> words = mask.MutableWords();
  size_t cleared = 0;
  for (uint32_t e : elems) {
    const size_t w = static_cast<size_t>(e) >> 6;
    SC_DCHECK_LT(w, words.size());
    const uint64_t bit = uint64_t{1} << (e & 63u);
    cleared += static_cast<size_t>((words[w] & bit) != 0);
    words[w] &= ~bit;
  }
  return cleared;
}

bool Intersects(std::span<const uint32_t> elems, const DynamicBitset& mask,
                KernelPolicy policy) {
  if (policy == KernelPolicy::kScalar) {
    for (uint32_t e : elems) {
      if (mask.Test(e)) return true;
    }
    return false;
  }
  // Branch once per block of 16 instead of once per element; the OR
  // accumulation inside a block is branch-free, and the early exit
  // still fires within 16 elements of the first hit.
  const std::span<const uint64_t> words = mask.Words();
  const size_t n = elems.size();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint64_t any = 0;
    for (size_t j = 0; j < 16; ++j) any |= Bit(words, elems[i + j]);
    if (any != 0) return true;
  }
  uint64_t any = 0;
  for (; i < n; ++i) any |= Bit(words, elems[i]);
  return any != 0;
}

}  // namespace streamcover
