// Word-parallel coverage kernels — the shared inner loop of every
// solver.
//
// Each streaming and offline algorithm in this library spends its hot
// path asking one of three questions about a set against a mask of
// still-uncovered elements: "how much would this set cover?"
// (CountUncovered), "which elements would it cover?" (FilterInto), and
// "cover them" (MarkCovered). This header centralizes those loops so
// every consumer — iterSetCover's Size Test, DIMV14's base pass, the
// [ER14]/[CW16] threshold sieve, the greedy baselines, the offline
// solvers — runs the same kernels instead of a private Test()-per-element
// loop.
//
// Sets come in two representations:
//
//   * sparse spans — the CSR default: a sorted unique uint32 span per
//     set. The kernels above take these.
//   * dense bitset rows (BitsetCSR) — sets whose density clears
//     ShouldStoreDense() are stored as one mask-shaped bitset row, and
//     the *Dense kernels below fuse the count/filter/mark step into a
//     word-AND loop over n/64 words instead of a load per element. At
//     the 1/8 storage threshold the dense row is both smaller (n/64
//     words vs >= n/16) and touches 4x+ fewer words per query.
//
// Each kernel has twins selected by `KernelPolicy`:
//
//   * kScalar — the reference loop: one DynamicBitset::Test per element
//     (or per set bit of a dense row) with a data-dependent branch.
//     This is byte-for-byte the pre-kernel code shape; it exists as the
//     differential-testing oracle and the A/B baseline.
//   * kWord — the branch-free path over the mask's raw 64-bit words:
//     membership is one aligned word load + shift/AND, filtering is
//     masked compaction, marking is an unconditional read-modify-write.
//     The dense twins are pure AND+popcount word loops.
//   * kAuto — kWord for the sparse kernels; for the dense count/mark
//     kernels, runtime dispatch to the widest SIMD variant the CPU
//     supports (DetectKernelIsa(): AVX-512 VPOPCNTDQ > AVX2 > portable
//     word loop). Setting STREAMCOVER_FORCE_SCALAR_ISA=1 in the
//     environment pins kAuto to the portable word loop — the CI leg
//     that proves the fallback path on wide-ISA build hosts.
//
// All twins produce bit-identical results element for element — same
// counts, same output sequences, same final masks — for any span or
// row. The stream layer additionally guarantees spans are sorted
// ascending and duplicate-free (SetSystem::Builder::AddSet enforces it
// for CSR, FileSetSource normalizes on parse), so downstream consumers
// may keep relying on that invariant. tests/cover_kernels_test.cc
// fuzzes the twins (including every compiled SIMD variant) against each
// other across word-boundary sizes and dense-threshold densities.

#ifndef STREAMCOVER_UTIL_COVER_KERNELS_H_
#define STREAMCOVER_UTIL_COVER_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "setsystem/set_view.h"
#include "util/arena.h"
#include "util/bitset.h"

namespace streamcover {

/// Selects the kernel twin. Carried on RunOptions (and from there on
/// every solver's options) so a whole sweep can be flipped to the
/// scalar reference with `--kernel scalar`; results are identical
/// either way, only the inner loop changes.
enum class KernelPolicy : uint8_t {
  kScalar,  ///< per-element Test() reference loop
  kWord,    ///< 64-elements-per-mask-word popcount path (default)
  kAuto,    ///< kWord + runtime SIMD dispatch for the dense kernels
};

/// "scalar" / "word" / "auto".
const char* KernelPolicyName(KernelPolicy policy);

/// Inverse of KernelPolicyName; nullopt for unknown spellings.
std::optional<KernelPolicy> ParseKernelPolicy(std::string_view name);

/// The instruction-set tier the dense kAuto kernels dispatch to.
enum class KernelIsa : uint8_t {
  kWord,    ///< portable uint64 loop (the fallback on any CPU)
  kAvx2,    ///< 256-bit AND + vpshufb nibble-LUT popcount
  kAvx512,  ///< 512-bit AND + VPOPCNTDQ
};

/// "word" / "avx2" / "avx512".
const char* KernelIsaName(KernelIsa isa);

/// The widest tier this CPU supports, probed once and cached. With
/// STREAMCOVER_FORCE_SCALAR_ISA=1 in the environment the probe is
/// skipped and kWord is reported — the knob CI uses to pin the portable
/// fallback on AVX-capable runners.
KernelIsa DetectKernelIsa();

/// Every tier this binary can actually execute here (always includes
/// kWord), ignoring the environment override. Differential tests run
/// each against the scalar oracle.
std::vector<KernelIsa> SupportedKernelIsas();

/// The still-uncovered elements a consumer filters against: a
/// DynamicBitset with the role made explicit. Every ScanConsumer owns
/// one per residual it tracks (space-charged in logical words exactly
/// like the raw bitset it replaces), the kernels read/update it, and
/// PassScheduler's batched dispatch prefilters whole columnar batches
/// against it (ScanConsumer::batch_filter).
class LiveMask {
 public:
  LiveMask() = default;
  explicit LiveMask(size_t size, bool value = false) : bits_(size, value) {}
  explicit LiveMask(DynamicBitset bits) : bits_(std::move(bits)) {}

  size_t size() const { return bits_.size(); }
  size_t WordCount() const { return bits_.WordCount(); }
  bool Test(size_t i) const { return bits_.Test(i); }
  void Set(size_t i) { bits_.Set(i); }
  void Reset(size_t i) { bits_.Reset(i); }
  size_t Count() const { return bits_.Count(); }
  bool Any() const { return bits_.Any(); }
  bool None() const { return bits_.None(); }
  std::vector<uint32_t> ToVector() const { return bits_.ToVector(); }

  /// The underlying bitset, for APIs (sampling, kernels, set algebra)
  /// that speak DynamicBitset.
  const DynamicBitset& bits() const { return bits_; }
  DynamicBitset& bits() { return bits_; }

 private:
  DynamicBitset bits_;
};

/// Number of elements of `elems` whose mask bit is set (the set's
/// residual gain). Elements must be < mask.size().
size_t CountUncovered(std::span<const uint32_t> elems,
                      const DynamicBitset& mask, KernelPolicy policy);

/// Appends the elements of `elems` whose mask bit is set to `arena` /
/// `out`, in span order, and returns how many were appended. The vector
/// overload appends (it does not clear).
size_t FilterInto(std::span<const uint32_t> elems, const DynamicBitset& mask,
                  U32Arena& arena, KernelPolicy policy);
size_t FilterInto(std::span<const uint32_t> elems, const DynamicBitset& mask,
                  std::vector<uint32_t>& out, KernelPolicy policy);

/// Clears the mask bit of every element of `elems`; returns how many
/// bits were set before the call (the gain the clear realized).
size_t MarkCovered(std::span<const uint32_t> elems, DynamicBitset& mask,
                   KernelPolicy policy);

/// True iff any element of `elems` has its mask bit set. Early-exits on
/// the first hit — the cheap pre-test the batch prefilter runs.
bool Intersects(std::span<const uint32_t> elems, const DynamicBitset& mask,
                KernelPolicy policy);

// --- Dense representation -------------------------------------------------

/// Storage policy: a set is stored as a dense bitset row once it holds
/// at least 1/kDenseStorageRatio of the universe. At ratio 8 the row
/// (n/64 words) is at most half the sparse span's footprint (>= n/16
/// words of uint32 pairs) and every dense kernel touches n/64 words
/// instead of >= n/8 element loads.
inline constexpr uint32_t kDenseStorageRatio = 8;

constexpr bool ShouldStoreDense(size_t set_size, uint32_t num_elements) {
  return num_elements > 0 &&
         set_size * kDenseStorageRatio >=
             static_cast<size_t>(num_elements);
}

/// CSR of dense bitset rows: each row is a mask-shaped bitset over
/// [0, num_elements), stored contiguously at words_per_row() words.
/// The dense twin of the sparse candidate CSR buffers consumers keep.
class BitsetCSR {
 public:
  explicit BitsetCSR(uint32_t num_elements);

  uint32_t num_elements() const { return num_elements_; }
  size_t words_per_row() const { return words_per_row_; }
  uint32_t rows() const { return rows_; }

  /// Total backing words (for SpaceTracker charging).
  size_t word_count() const { return words_.size(); }

  /// Appends a row built from a sorted unique span with elements
  /// < num_elements(); returns the new row's index.
  uint32_t AddRow(std::span<const uint32_t> elems);

  /// Row `row` as mask-shaped words (words_per_row() of them; bits at
  /// or above num_elements() are zero).
  std::span<const uint64_t> Row(uint32_t row) const;

 private:
  uint32_t num_elements_ = 0;
  size_t words_per_row_ = 0;
  uint32_t rows_ = 0;
  std::vector<uint64_t> words_;
};

// Dense kernels: `row` must be mask-shaped (row.size() ==
// mask.WordCount(), tail bits zero — exactly what BitsetCSR::Row
// returns for a mask over the same universe). Results are bit-identical
// to running the sparse kernel over the row's elements.

/// popcount(row & mask) — the residual gain of a dense set. Fused: one
/// AND+popcount pass, no intersection materialized.
size_t CountUncoveredDense(std::span<const uint64_t> row,
                           const DynamicBitset& mask, KernelPolicy policy);

/// Appends the elements of row & mask to `out`, ascending, and returns
/// how many were appended — the fused count+filter kernel (the count is
/// the return value; no second pass).
size_t FilterIntoDense(std::span<const uint64_t> row,
                       const DynamicBitset& mask, std::vector<uint32_t>& out,
                       KernelPolicy policy);

/// mask &= ~row, returning popcount(row & mask) before the clear — the
/// fused count+mark kernel.
size_t MarkCoveredDense(std::span<const uint64_t> row, DynamicBitset& mask,
                        KernelPolicy policy);

/// True iff (row & mask) has any bit set; early-exits per word.
bool IntersectsDense(std::span<const uint64_t> row, const DynamicBitset& mask,
                     KernelPolicy policy);

/// Tier-pinned variants of the dispatchable dense kernels, for the
/// differential tests that must exercise every compiled SIMD path
/// regardless of what DetectKernelIsa() picks. `isa` must be in
/// SupportedKernelIsas(). Word spans are the mask's Words() /
/// MutableWords().
size_t CountUncoveredDenseIsa(std::span<const uint64_t> row,
                              std::span<const uint64_t> mask, KernelIsa isa);
size_t MarkCoveredDenseIsa(std::span<const uint64_t> row,
                           std::span<uint64_t> mask, KernelIsa isa);

// SetView / LiveMask conveniences: the spellings the consumers use.
inline size_t CountUncovered(const SetView& set, const LiveMask& mask,
                             KernelPolicy policy) {
  return CountUncovered(set.elems, mask.bits(), policy);
}
inline size_t FilterInto(const SetView& set, const LiveMask& mask,
                         U32Arena& arena, KernelPolicy policy) {
  return FilterInto(set.elems, mask.bits(), arena, policy);
}
inline size_t FilterInto(const SetView& set, const LiveMask& mask,
                         std::vector<uint32_t>& out, KernelPolicy policy) {
  return FilterInto(set.elems, mask.bits(), out, policy);
}
inline size_t MarkCovered(const SetView& set, LiveMask& mask,
                          KernelPolicy policy) {
  return MarkCovered(set.elems, mask.bits(), policy);
}
inline bool Intersects(const SetView& set, const LiveMask& mask,
                       KernelPolicy policy) {
  return Intersects(set.elems, mask.bits(), policy);
}

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_COVER_KERNELS_H_
