// Word-parallel coverage kernels — the shared inner loop of every
// solver.
//
// Each streaming and offline algorithm in this library spends its hot
// path asking one of three questions about a set against a mask of
// still-uncovered elements: "how much would this set cover?"
// (CountUncovered), "which elements would it cover?" (FilterInto), and
// "cover them" (MarkCovered). This header centralizes those loops so
// every consumer — iterSetCover's Size Test, DIMV14's base pass, the
// [ER14]/[CW16] threshold sieve, the greedy baselines, the offline
// solvers — runs the same kernels instead of a private Test()-per-element
// loop.
//
// Each kernel has two twins selected by `KernelPolicy`:
//
//   * kScalar — the reference loop: one DynamicBitset::Test per element
//     with a data-dependent branch. This is byte-for-byte the
//     pre-kernel code shape; it exists as the differential-testing
//     oracle and the A/B baseline.
//   * kWord — the branch-free path over the mask's raw 64-bit words:
//     membership is one aligned word load + shift/AND, filtering is
//     masked compaction (store every element, advance the cursor only
//     for survivors), marking is an unconditional read-modify-write.
//     At mask density p the scalar twin mispredicts ~min(p, 1-p) of its
//     branches; the word twin has none, and its straight-line loops are
//     what the compiler can unroll and vectorize (the -O3 CI leg keeps
//     them warnings-clean).
//
// Both twins produce bit-identical results element for element — same
// counts, same output sequences, same final masks — for any span. The
// stream layer additionally guarantees spans are sorted ascending and
// duplicate-free (SetSystem::Builder::AddSet enforces it for CSR,
// FileSetSource normalizes on parse), so downstream consumers may keep
// relying on that invariant. tests/cover_kernels_test.cc fuzzes the
// twins against each other across word-boundary sizes.

#ifndef STREAMCOVER_UTIL_COVER_KERNELS_H_
#define STREAMCOVER_UTIL_COVER_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "setsystem/set_view.h"
#include "util/arena.h"
#include "util/bitset.h"

namespace streamcover {

/// Selects the kernel twin. Carried on RunOptions (and from there on
/// every solver's options) so a whole sweep can be flipped to the
/// scalar reference with `--kernel scalar`; results are identical
/// either way, only the inner loop changes.
enum class KernelPolicy : uint8_t {
  kScalar,  ///< per-element Test() reference loop
  kWord,    ///< 64-elements-per-mask-word popcount path (default)
};

/// "scalar" / "word".
const char* KernelPolicyName(KernelPolicy policy);

/// Inverse of KernelPolicyName; nullopt for unknown spellings.
std::optional<KernelPolicy> ParseKernelPolicy(std::string_view name);

/// The still-uncovered elements a consumer filters against: a
/// DynamicBitset with the role made explicit. Every ScanConsumer owns
/// one per residual it tracks (space-charged in logical words exactly
/// like the raw bitset it replaces), the kernels read/update it, and
/// PassScheduler's batched dispatch prefilters whole columnar batches
/// against it (ScanConsumer::batch_filter).
class LiveMask {
 public:
  LiveMask() = default;
  explicit LiveMask(size_t size, bool value = false) : bits_(size, value) {}
  explicit LiveMask(DynamicBitset bits) : bits_(std::move(bits)) {}

  size_t size() const { return bits_.size(); }
  size_t WordCount() const { return bits_.WordCount(); }
  bool Test(size_t i) const { return bits_.Test(i); }
  void Set(size_t i) { bits_.Set(i); }
  void Reset(size_t i) { bits_.Reset(i); }
  size_t Count() const { return bits_.Count(); }
  bool Any() const { return bits_.Any(); }
  bool None() const { return bits_.None(); }
  std::vector<uint32_t> ToVector() const { return bits_.ToVector(); }

  /// The underlying bitset, for APIs (sampling, kernels, set algebra)
  /// that speak DynamicBitset.
  const DynamicBitset& bits() const { return bits_; }
  DynamicBitset& bits() { return bits_; }

 private:
  DynamicBitset bits_;
};

/// Number of elements of `elems` whose mask bit is set (the set's
/// residual gain). Elements must be < mask.size().
size_t CountUncovered(std::span<const uint32_t> elems,
                      const DynamicBitset& mask, KernelPolicy policy);

/// Appends the elements of `elems` whose mask bit is set to `arena` /
/// `out`, in span order, and returns how many were appended. The vector
/// overload appends (it does not clear).
size_t FilterInto(std::span<const uint32_t> elems, const DynamicBitset& mask,
                  U32Arena& arena, KernelPolicy policy);
size_t FilterInto(std::span<const uint32_t> elems, const DynamicBitset& mask,
                  std::vector<uint32_t>& out, KernelPolicy policy);

/// Clears the mask bit of every element of `elems`; returns how many
/// bits were set before the call (the gain the clear realized).
size_t MarkCovered(std::span<const uint32_t> elems, DynamicBitset& mask,
                   KernelPolicy policy);

/// True iff any element of `elems` has its mask bit set. Early-exits on
/// the first hit — the cheap pre-test the batch prefilter runs.
bool Intersects(std::span<const uint32_t> elems, const DynamicBitset& mask,
                KernelPolicy policy);

// SetView / LiveMask conveniences: the spellings the consumers use.
inline size_t CountUncovered(const SetView& set, const LiveMask& mask,
                             KernelPolicy policy) {
  return CountUncovered(set.elems, mask.bits(), policy);
}
inline size_t FilterInto(const SetView& set, const LiveMask& mask,
                         U32Arena& arena, KernelPolicy policy) {
  return FilterInto(set.elems, mask.bits(), arena, policy);
}
inline size_t FilterInto(const SetView& set, const LiveMask& mask,
                         std::vector<uint32_t>& out, KernelPolicy policy) {
  return FilterInto(set.elems, mask.bits(), out, policy);
}
inline size_t MarkCovered(const SetView& set, LiveMask& mask,
                          KernelPolicy policy) {
  return MarkCovered(set.elems, mask.bits(), policy);
}
inline bool Intersects(const SetView& set, const LiveMask& mask,
                       KernelPolicy policy) {
  return Intersects(set.elems, mask.bits(), policy);
}

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_COVER_KERNELS_H_
