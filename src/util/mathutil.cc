#include "util/mathutil.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace streamcover {

uint64_t CeilDiv(uint64_t a, uint64_t b) {
  SC_CHECK_GT(b, 0u);
  return (a + b - 1) / b;
}

uint32_t FloorLog2(uint64_t x) {
  SC_CHECK_GE(x, 1u);
  return 63u - static_cast<uint32_t>(__builtin_clzll(x));
}

uint32_t CeilLog2(uint64_t x) {
  SC_CHECK_GE(x, 1u);
  uint32_t f = FloorLog2(x);
  return ((x & (x - 1)) == 0) ? f : f + 1;
}

double Log2Clamped(uint64_t x) {
  return std::log2(static_cast<double>(std::max<uint64_t>(x, 2)));
}

double PowDouble(double x, double delta) { return std::pow(x, delta); }

uint64_t RelativeApproxSampleSize(double p, double eps, double log_ranges,
                                  double log_inv_q, double c_prime) {
  SC_CHECK(p > 0.0 && p <= 1.0);
  SC_CHECK(eps > 0.0);
  double size = (c_prime / (eps * eps * p)) *
                (log_ranges * std::log2(1.0 / p) + log_inv_q);
  return static_cast<uint64_t>(std::ceil(std::max(size, 1.0)));
}

namespace {

uint64_t ClampSample(double raw, uint64_t universe_size) {
  if (universe_size == 0) return 0;
  double clamped = std::max(raw, 1.0);
  if (clamped >= static_cast<double>(universe_size)) return universe_size;
  return static_cast<uint64_t>(std::ceil(clamped));
}

}  // namespace

uint64_t IterSetCoverSampleSize(double c, double rho, uint64_t k, uint64_t n,
                                double delta, uint64_t m,
                                uint64_t universe_size) {
  double raw = c * rho * static_cast<double>(k) *
               PowDouble(static_cast<double>(n), delta) * Log2Clamped(m) *
               Log2Clamped(n);
  return ClampSample(raw, universe_size);
}

uint64_t GeomSampleSize(double c, double rho, uint64_t k, uint64_t n,
                        double delta, uint64_t m, uint64_t universe_size) {
  double ratio = static_cast<double>(n) / static_cast<double>(std::max<uint64_t>(k, 1));
  double raw = c * rho * static_cast<double>(k) *
               PowDouble(std::max(ratio, 1.0), delta) * Log2Clamped(m) *
               Log2Clamped(n);
  return ClampSample(raw, universe_size);
}

uint64_t AllowedUncovered(uint64_t n, double coverage_fraction) {
  // A fraction above 1 would make the subtraction below wrap to a huge
  // unsigned allowance ("everything may stay uncovered"); callers
  // validate user input, so out-of-range here is a programming error.
  SC_CHECK(coverage_fraction > 0.0 && coverage_fraction <= 1.0);
  uint64_t required = static_cast<uint64_t>(std::ceil(
      coverage_fraction * static_cast<double>(n) - 1e-9));
  required = std::min(required, n);  // float round-up guard at fraction 1
  return n - required;
}

}  // namespace streamcover
