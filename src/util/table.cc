#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace streamcover {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SC_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  SC_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::Fmt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Table::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace streamcover
