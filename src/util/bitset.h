// Dynamic fixed-capacity bitset.
//
// The workhorse container for element sets: residual ground sets, sample
// membership masks, coverage marks. Word-granular so that the streaming
// space accounting (SpaceTracker) can charge exactly `WordCount()` words.

#ifndef STREAMCOVER_UTIL_BITSET_H_
#define STREAMCOVER_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace streamcover {

/// Fixed-size (at construction) bitset over [0, size).
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset over [0, size), all bits set to `value`.
  explicit DynamicBitset(size_t size, bool value = false);

  size_t size() const { return size_; }

  /// Number of 64-bit words of backing storage (for space accounting).
  size_t WordCount() const { return words_.size(); }

  bool Test(size_t i) const;
  void Set(size_t i);
  void Reset(size_t i);
  void SetAll();
  void ResetAll();

  /// Number of set bits.
  size_t Count() const;

  bool Any() const;
  bool None() const { return !Any(); }

  /// Index of the lowest set bit, or size() if none.
  size_t FindFirst() const;

  /// Index of the lowest set bit strictly greater than i, or size().
  size_t FindNext(size_t i) const;

  /// this &= other / this |= other / this &= ~other. Sizes must match.
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& AndNot(const DynamicBitset& other);

  /// popcount(this & ~other) without materializing the intersection —
  /// "how many of my bits does `other` not cover". Sizes must match.
  size_t AndNotCountWords(const DynamicBitset& other) const;

  /// dst |= *this, word-parallel. Sizes must match. The accumulate-into
  /// twin of operator|= for call sites where the source is const.
  void OrInto(DynamicBitset& dst) const;

  /// Word-granular views of the backing storage, for the word-parallel
  /// coverage kernels (util/cover_kernels.h). Bits at or above size() in
  /// the last word are guaranteed zero and must stay zero through
  /// MutableWords() writes.
  std::span<const uint64_t> Words() const { return words_; }
  std::span<uint64_t> MutableWords() { return words_; }

  bool operator==(const DynamicBitset& other) const;

  /// Collects the indices of all set bits, ascending.
  std::vector<uint32_t> ToVector() const;

  /// Iterates set bits ascending: fn(index).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        fn(static_cast<uint32_t>(w * 64 + static_cast<size_t>(bit)));
        word &= word - 1;
      }
    }
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_BITSET_H_
