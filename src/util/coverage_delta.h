// CoverageDeltaListener — the push side of output-sensitive gain
// maintenance.
//
// Consumers that cover elements (the threshold sieve, greedy pick
// loops, bucket engines) publish the elements they newly covered;
// trackers (setsystem/transposed_index.h's GainTracker) subscribe and
// decrement exactly the affected sets' residual gains instead of every
// consumer rescanning its whole candidate buffer. PassScheduler carries
// the registration list (AddDeltaListener / PublishCoverageDelta) so a
// solver can wire any tracker to any publishing consumer without the
// two knowing each other.

#ifndef STREAMCOVER_UTIL_COVERAGE_DELTA_H_
#define STREAMCOVER_UTIL_COVERAGE_DELTA_H_

#include <cstdint>
#include <span>

namespace streamcover {

/// Receives batches of newly covered elements. A publisher must report
/// each element at most once over the publisher's lifetime (elements
/// are covered once); batches arrive on the scheduling thread.
class CoverageDeltaListener {
 public:
  virtual ~CoverageDeltaListener() = default;
  virtual void OnCoverageDelta(std::span<const uint32_t> newly_covered) = 0;
};

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_COVERAGE_DELTA_H_
