// Invariant-checking macros (Google-style CHECK/DCHECK).
//
// CHECK* abort with a diagnostic on violation in all build types; DCHECK*
// compile away in release builds. The library does not throw exceptions on
// hot paths; violated invariants are programming errors, not recoverable
// conditions, so they terminate.

#ifndef STREAMCOVER_UTIL_CHECK_H_
#define STREAMCOVER_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace streamcover {
namespace internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace streamcover

#define SC_CHECK(cond)                                             \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::streamcover::internal::CheckFail(__FILE__, __LINE__, #cond); \
    }                                                              \
  } while (0)

#define SC_CHECK_EQ(a, b) SC_CHECK((a) == (b))
#define SC_CHECK_NE(a, b) SC_CHECK((a) != (b))
#define SC_CHECK_LT(a, b) SC_CHECK((a) < (b))
#define SC_CHECK_LE(a, b) SC_CHECK((a) <= (b))
#define SC_CHECK_GT(a, b) SC_CHECK((a) > (b))
#define SC_CHECK_GE(a, b) SC_CHECK((a) >= (b))

#ifdef NDEBUG
#define SC_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define SC_DCHECK(cond) SC_CHECK(cond)
#endif

#define SC_DCHECK_EQ(a, b) SC_DCHECK((a) == (b))
#define SC_DCHECK_LT(a, b) SC_DCHECK((a) < (b))
#define SC_DCHECK_LE(a, b) SC_DCHECK((a) <= (b))
#define SC_DCHECK_GT(a, b) SC_DCHECK((a) > (b))

#endif  // STREAMCOVER_UTIL_CHECK_H_
