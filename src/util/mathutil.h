// Integer/float math helpers shared across modules, including the
// sample-size formulas from the paper (Lemma 2.5 and the sizes used by
// iterSetCover / algGeomSC).

#ifndef STREAMCOVER_UTIL_MATHUTIL_H_
#define STREAMCOVER_UTIL_MATHUTIL_H_

#include <cstdint>

namespace streamcover {

/// ceil(a / b) for positive integers.
uint64_t CeilDiv(uint64_t a, uint64_t b);

/// floor(log2(x)) for x >= 1.
uint32_t FloorLog2(uint64_t x);

/// ceil(log2(x)) for x >= 1.
uint32_t CeilLog2(uint64_t x);

/// log2(max(x,2)) as a double — the paper's "log" (base 2), floored at 1
/// so degenerate tiny instances don't produce zero sample sizes.
double Log2Clamped(uint64_t x);

/// x^delta for x >= 0.
double PowDouble(double x, double delta);

/// Sample size from Lemma 2.5: a uniform sample of size
///   (c' / (eps^2 p)) * (log |H| * log(1/p) + log(1/q))
/// is a relative (p,eps)-approximation for the range family H with
/// probability >= 1 - q. `log_ranges` is log2 |H|.
uint64_t RelativeApproxSampleSize(double p, double eps, double log_ranges,
                                  double log_inv_q, double c_prime);

/// The iterSetCover per-iteration sample size (Figure 1.3):
///   ceil(c * rho * k * n^delta * log m * log n),
/// clamped to [1, universe_size].
uint64_t IterSetCoverSampleSize(double c, double rho, uint64_t k, uint64_t n,
                                double delta, uint64_t m,
                                uint64_t universe_size);

/// The algGeomSC per-iteration sample size (Figure 4.1):
///   ceil(c * rho * k * (n/k)^delta * log m * log n),
/// clamped to [1, universe_size].
uint64_t GeomSampleSize(double c, double rho, uint64_t k, uint64_t n,
                        double delta, uint64_t m, uint64_t universe_size);

/// epsilon-Partial Set Cover allowance: how many of the n elements may
/// stay uncovered when the target is `coverage_fraction` of U. Computed
/// as n - ceil(fraction*n) with an epsilon guard so that e.g. fraction
/// 0.9 of n=100 allows exactly 10 uncovered elements despite 1.0 - 0.9
/// not being representable. Fraction must be in (0, 1]; 1.0 = classic
/// full cover (allowance 0).
uint64_t AllowedUncovered(uint64_t n, double coverage_fraction);

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_MATHUTIL_H_
