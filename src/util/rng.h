// Deterministic pseudo-random number generation.
//
// All randomized components of the library draw from `Rng`, a
// xoshiro256** generator seeded via SplitMix64. Using our own generator
// (instead of std::mt19937) guarantees bit-identical streams across
// standard libraries and platforms, which the tests and benchmark tables
// rely on for reproducibility.

#ifndef STREAMCOVER_UTIL_RNG_H_
#define STREAMCOVER_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace streamcover {

/// xoshiro256** PRNG with SplitMix64 seeding. Not cryptographic.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's nearly-divisionless unbiased method.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples `k` distinct values from [0, n) using Robert Floyd's
  /// algorithm; output is in no particular order. Requires k <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Same draw sequence, appended to `out` — the allocation-free path
  /// generators use to stage sets into a shared CSR buffer.
  void SampleWithoutReplacementInto(uint32_t n, uint32_t k,
                                    std::vector<uint32_t>& out);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (useful for parallel
  /// sub-experiments that must not share a stream).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_RNG_H_
