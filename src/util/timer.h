// Wall-clock timer for benches.

#ifndef STREAMCOVER_UTIL_TIMER_H_
#define STREAMCOVER_UTIL_TIMER_H_

#include <chrono>

namespace streamcover {

/// Monotonic wall timer; starts at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_TIMER_H_
