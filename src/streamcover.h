// streamcover — umbrella public header.
//
// A reproduction of "Towards Tight Bounds for the Streaming Set Cover
// Problem" (Har-Peled, Indyk, Mahabadi, Vakilian; PODS 2016): the
// iterSetCover trade-off algorithm, its geometric variant, every
// baseline of Figure 1.1, and executable versions of the paper's
// lower-bound constructions. See README.md for a tour and DESIGN.md for
// the module map.

#ifndef STREAMCOVER_STREAMCOVER_H_
#define STREAMCOVER_STREAMCOVER_H_

#include "baselines/dimv14.h"                 // IWYU pragma: export
#include "baselines/iterative_greedy.h"       // IWYU pragma: export
#include "baselines/store_all_greedy.h"       // IWYU pragma: export
#include "baselines/streaming_max_cover.h"    // IWYU pragma: export
#include "baselines/threshold_greedy.h"       // IWYU pragma: export
#include "commlb/chasing.h"                   // IWYU pragma: export
#include "commlb/isc_to_setcover.h"           // IWYU pragma: export
#include "commlb/recover_bit.h"               // IWYU pragma: export
#include "commlb/set_disjointness.h"          // IWYU pragma: export
#include "commlb/sparse_lb.h"                 // IWYU pragma: export
#include "core/instance.h"                    // IWYU pragma: export
#include "core/iter_set_cover.h"              // IWYU pragma: export
#include "core/projection_store.h"            // IWYU pragma: export
#include "core/run_plan.h"                    // IWYU pragma: export
#include "core/solver_registry.h"             // IWYU pragma: export
#include "core/workload_registry.h"           // IWYU pragma: export
#include "geometry/canonical.h"               // IWYU pragma: export
#include "geometry/geom_generators.h"         // IWYU pragma: export
#include "geometry/geom_io.h"                 // IWYU pragma: export
#include "geometry/geom_set_cover.h"          // IWYU pragma: export
#include "geometry/primitives.h"              // IWYU pragma: export
#include "geometry/range_space.h"             // IWYU pragma: export
#include "offline/exact.h"                    // IWYU pragma: export
#include "offline/greedy.h"                   // IWYU pragma: export
#include "offline/max_cover.h"                // IWYU pragma: export
#include "offline/weighted_greedy.h"          // IWYU pragma: export
#include "setsystem/binary_io.h"              // IWYU pragma: export
#include "setsystem/cover.h"                  // IWYU pragma: export
#include "setsystem/generators.h"             // IWYU pragma: export
#include "setsystem/io.h"                     // IWYU pragma: export
#include "setsystem/set_system.h"             // IWYU pragma: export
#include "setsystem/set_view.h"               // IWYU pragma: export
#include "setsystem/stream_generators.h"      // IWYU pragma: export
#include "shard/merge_stage.h"                // IWYU pragma: export
#include "shard/sharded_greedi.h"             // IWYU pragma: export
#include "shard/stream_partitioner.h"         // IWYU pragma: export
#include "shard/threshold_bucket.h"           // IWYU pragma: export
#include "stream/mmap_set_source.h"           // IWYU pragma: export
#include "stream/pass_scheduler.h"            // IWYU pragma: export
#include "stream/pipelined_scan.h"            // IWYU pragma: export
#include "stream/sampling.h"                  // IWYU pragma: export
#include "stream/set_source.h"                // IWYU pragma: export
#include "stream/set_stream.h"                // IWYU pragma: export
#include "stream/space_tracker.h"             // IWYU pragma: export
#include "util/cover_kernels.h"               // IWYU pragma: export

#endif  // STREAMCOVER_STREAMCOVER_H_
