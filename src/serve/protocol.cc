#include "serve/protocol.h"

#include <cmath>
#include <utility>

namespace streamcover {
namespace {

/// Strict typed field readers: absent is fine (default kept), present
/// with the wrong type is a hard parse error — network input never
/// silently coerces.
bool ReadString(const JsonValue& obj, const char* key, std::string* out,
                std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return true;
  if (!v->is_string()) {
    *error = std::string("field '") + key + "' must be a string";
    return false;
  }
  *out = v->AsString();
  return true;
}

bool ReadBool(const JsonValue& obj, const char* key, bool* out,
              std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return true;
  if (!v->is_bool()) {
    *error = std::string("field '") + key + "' must be a boolean";
    return false;
  }
  *out = v->AsBool();
  return true;
}

bool ReadDouble(const JsonValue& obj, const char* key, double* out,
                std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return true;
  if (!v->is_number()) {
    *error = std::string("field '") + key + "' must be a number";
    return false;
  }
  *out = v->AsDouble();
  return true;
}

bool ReadInt64(const JsonValue& obj, const char* key, int64_t* out,
               std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return true;
  if (!v->is_number() ||
      v->AsDouble() != std::floor(v->AsDouble())) {
    *error = std::string("field '") + key + "' must be an integer";
    return false;
  }
  *out = v->AsInt64();
  return true;
}

}  // namespace

bool ParseServeRequest(const std::string& line, ServeRequest* request,
                       std::string* error) {
  std::string parse_error;
  std::optional<JsonValue> doc = JsonValue::Parse(line, &parse_error);
  if (!doc.has_value()) {
    *error = "malformed JSON: " + parse_error;
    return false;
  }
  if (!doc->is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  ServeRequest req;
  if (!ReadString(*doc, "op", &req.op, error) ||
      !ReadString(*doc, "id", &req.id, error) ||
      !ReadString(*doc, "instance", &req.instance, error) ||
      !ReadString(*doc, "solver", &req.solver, error) ||
      !ReadBool(*doc, "include_cover", &req.include_cover, error) ||
      !ReadInt64(*doc, "sleep_ms", &req.sleep_ms, error) ||
      !ReadDouble(*doc, "delta", &req.delta, error) ||
      !ReadDouble(*doc, "coverage_fraction", &req.coverage_fraction,
                  error)) {
    return false;
  }
  int64_t seed = static_cast<int64_t>(req.seed);
  if (!ReadInt64(*doc, "seed", &seed, error)) return false;
  req.seed = static_cast<uint64_t>(seed);
  int64_t threads = req.threads;
  if (!ReadInt64(*doc, "threads", &threads, error)) return false;
  if (threads < 0 || threads > 256) {
    *error = "field 'threads' out of range [0, 256]";
    return false;
  }
  req.threads = static_cast<uint32_t>(threads);
  int64_t scan_threads = req.scan_threads;
  if (!ReadInt64(*doc, "scan_threads", &scan_threads, error)) return false;
  if (scan_threads <= 0 || scan_threads > 256) {
    *error = "field 'scan_threads' out of range [1, 256]";
    return false;
  }
  req.scan_threads = static_cast<uint32_t>(scan_threads);
  int64_t shards = req.shards;
  if (!ReadInt64(*doc, "shards", &shards, error)) return false;
  if (shards <= 0 || shards > 1024) {
    *error = "field 'shards' out of range [1, 1024]";
    return false;
  }
  req.shards = static_cast<uint32_t>(shards);
  std::string kernel_name;
  if (!ReadString(*doc, "kernel", &kernel_name, error)) return false;
  if (!kernel_name.empty()) {
    std::optional<KernelPolicy> kernel = ParseKernelPolicy(kernel_name);
    if (!kernel.has_value()) {
      *error = "unknown kernel '" + kernel_name +
               "'; available: scalar, word, auto";
      return false;
    }
    req.kernel = *kernel;
  }
  if (const JsonValue* v = doc->Find("deadline_ms")) {
    if (!v->is_number() || v->AsDouble() != std::floor(v->AsDouble())) {
      *error = "field 'deadline_ms' must be an integer";
      return false;
    }
    req.deadline_ms = v->AsInt64();
  }
  if (req.op.empty()) {
    *error = "missing required field 'op'";
    return false;
  }
  if (req.op != "solve" && req.op != "sleep" && req.op != "stats" &&
      req.op != "list" && req.op != "ping") {
    *error = "unknown op '" + req.op + "'";
    return false;
  }
  if (req.op == "solve") {
    if (req.instance.empty()) {
      *error = "op 'solve' requires field 'instance'";
      return false;
    }
    if (req.solver.empty()) {
      *error = "op 'solve' requires field 'solver'";
      return false;
    }
  }
  if (req.op == "sleep" && (req.sleep_ms < 0 || req.sleep_ms > 60000)) {
    *error = "field 'sleep_ms' out of range [0, 60000]";
    return false;
  }
  *request = std::move(req);
  return true;
}

JsonValue ErrorResponse(const std::string& id, const std::string& code,
                        const std::string& message) {
  JsonValue response = JsonValue::Object();
  if (!id.empty()) response.Set("id", id);
  response.Set("ok", false);
  JsonValue err = JsonValue::Object();
  err.Set("code", code);
  err.Set("message", message);
  response.Set("error", std::move(err));
  return response;
}

JsonValue SolveResponse(const ServeRequest& request,
                        const RunResult& result) {
  JsonValue response = JsonValue::Object();
  if (!request.id.empty()) response.Set("id", request.id);
  response.Set("ok", true);
  response.Set("solver", result.solver);
  response.Set("instance", result.instance);
  response.Set("cover_size", static_cast<uint64_t>(result.cover.size()));
  response.Set("success", result.success);
  response.Set("passes", result.passes);
  response.Set("sequential_scans", result.sequential_scans);
  response.Set("physical_scans", result.physical_scans);
  response.Set("space_words", result.space_words);
  response.Set("projection_words_peak", result.projection_words_peak);
  response.Set("duration_ms", result.duration_ms);
  if (!result.shard_stats.empty()) {
    JsonValue shards = JsonValue::Array();
    for (const ShardStat& stat : result.shard_stats) {
      JsonValue row = JsonValue::Object();
      row.Set("shard", static_cast<uint64_t>(stat.shard));
      row.Set("sets_seen", stat.sets_seen);
      row.Set("candidates", stat.candidates);
      row.Set("inserts", stat.inserts);
      row.Set("work_items", stat.work_items);
      shards.Append(std::move(row));
    }
    response.Set("shards", std::move(shards));
    JsonValue merge = JsonValue::Object();
    merge.Set("candidates", result.merge_stats.candidates);
    merge.Set("duplicates_dropped", result.merge_stats.duplicates_dropped);
    merge.Set("picked", result.merge_stats.picked);
    merge.Set("duration_ms", result.merge_stats.duration_ms);
    response.Set("merge", std::move(merge));
  }
  if (request.include_cover) {
    JsonValue ids = JsonValue::Array();
    for (uint32_t id : result.cover.set_ids) {
      ids.Append(static_cast<uint64_t>(id));
    }
    response.Set("cover", std::move(ids));
  }
  return response;
}

JsonValue OkResponse(const std::string& id) {
  JsonValue response = JsonValue::Object();
  if (!id.empty()) response.Set("id", id);
  response.Set("ok", true);
  return response;
}

}  // namespace streamcover
