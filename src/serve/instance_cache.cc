#include "serve/instance_cache.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "core/workload_registry.h"

namespace streamcover {
namespace {

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

bool ParseUint32(const std::string& text, uint32_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' ||
      v > 0xFFFFFFFFULL) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

bool ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

/// Parses the "k=v,k=v" suffix of a workload name into WorkloadParams.
/// Repeated keys are rejected: a spec like "n=300,n=400" is almost
/// always a caller bug, and silently keeping the last value would make
/// two different spec strings name the same cache entry's twin.
bool ParseWorkloadParams(const std::string& spec, WorkloadParams* params,
                         std::string* error) {
  std::vector<std::string> seen_keys;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string pair = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      *error = "bad workload param '" + pair + "' (expected key=value)";
      return false;
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (std::find(seen_keys.begin(), seen_keys.end(), key) !=
        seen_keys.end()) {
      *error = "duplicate workload param '" + key + "'";
      return false;
    }
    seen_keys.push_back(key);
    bool ok = true;
    if (key == "n") {
      ok = ParseUint32(value, &params->n);
    } else if (key == "m") {
      ok = ParseUint32(value, &params->m);
    } else if (key == "k") {
      ok = ParseUint32(value, &params->k);
    } else if (key == "max_set_size") {
      ok = ParseUint32(value, &params->max_set_size);
    } else if (key == "alpha") {
      ok = ParseDouble(value, &params->alpha);
    } else if (key == "levels") {
      ok = ParseUint32(value, &params->levels);
    } else if (key == "seed") {
      ok = ParseUint64(value, &params->seed);
    } else if (key == "path") {
      params->path = value;
    } else {
      *error = "unknown workload param '" + key + "'";
      return false;
    }
    if (!ok) {
      *error = "bad value for workload param '" + key + "': " + value;
      return false;
    }
  }
  return true;
}

}  // namespace

bool IsMalformedInstanceSpec(const std::string& name, std::string* error) {
  // A real file resolves regardless of what its name looks like, and a
  // bare name (no params) can only fail as unknown — both are the
  // caller naming something that does not exist, not a syntax error.
  if (FileExists(name)) return false;
  const size_t colon = name.find(':');
  if (colon == std::string::npos) return false;
  WorkloadParams scratch;
  std::string param_error;
  if (ParseWorkloadParams(name.substr(colon + 1), &scratch, &param_error)) {
    return false;
  }
  if (error != nullptr) *error = name + ": " + param_error;
  return true;
}

InstanceCache::InstanceCache(uint64_t byte_budget)
    : byte_budget_(byte_budget) {}

std::shared_ptr<const Instance> InstanceCache::Load(const std::string& name,
                                                    std::string* error) {
  // A path wins over a workload name: serving real repositories is the
  // primary mode, and registry names never contain '/'.
  if (FileExists(name)) {
    std::optional<Instance> instance = Instance::FromFile(name, error);
    if (!instance.has_value()) return nullptr;
    instance->Prepare();
    return std::make_shared<const Instance>(std::move(*instance));
  }
  const size_t colon = name.find(':');
  const std::string base = name.substr(0, colon);
  WorkloadParams params;
  if (colon != std::string::npos) {
    std::string param_error;
    if (!ParseWorkloadParams(name.substr(colon + 1), &params,
                             &param_error)) {
      if (error != nullptr) *error = name + ": " + param_error;
      return nullptr;
    }
  }
  std::optional<Instance> instance = MakeWorkload(base, params, error);
  if (!instance.has_value()) return nullptr;
  // Force any lazy materialization now, while this thread is the sole
  // owner — every later access through the cache is const and shared.
  instance->Prepare();
  return std::make_shared<const Instance>(std::move(*instance));
}

std::shared_ptr<const Instance> InstanceCache::Get(const std::string& name,
                                                   std::string* error) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(name);
    if (it == entries_.end()) break;  // cold: this thread loads
    Entry& entry = it->second;
    if (entry.loading) {
      // Another thread is loading this name; share its outcome.
      load_done_.wait(lock);
      continue;
    }
    if (entry.failed) {
      // Failed loads are not cached (the file may appear later);
      // retry from scratch.
      lru_.erase(entry.lru_pos);
      entries_.erase(it);
      break;
    }
    ++stats_.hits;
    ++entry.requests;
    TouchLocked(entry, name);
    return entry.instance;
  }

  ++stats_.misses;
  Entry& entry = entries_[name];
  entry.loading = true;
  entry.lru_pos = lru_.insert(lru_.begin(), name);
  lock.unlock();

  std::string load_error;
  std::shared_ptr<const Instance> loaded = Load(name, &load_error);

  lock.lock();
  auto it = entries_.find(name);
  // The entry cannot have been evicted mid-load (EvictLocked skips
  // loading entries), so it is still there.
  Entry& done = it->second;
  done.loading = false;
  if (loaded == nullptr) {
    done.failed = true;
    done.load_error = load_error;
    ++stats_.load_failures;
    lru_.erase(done.lru_pos);
    entries_.erase(it);
    load_done_.notify_all();
    if (error != nullptr) *error = load_error;
    return nullptr;
  }
  done.instance = loaded;
  done.bytes = loaded->resident_bytes();
  done.requests = 1;
  stats_.resident_bytes += done.bytes;
  ++stats_.resident_count;
  EvictLocked();
  load_done_.notify_all();
  return loaded;
}

void InstanceCache::TouchLocked(Entry& entry, const std::string& name) {
  lru_.erase(entry.lru_pos);
  entry.lru_pos = lru_.insert(lru_.begin(), name);
}

void InstanceCache::EvictLocked() {
  if (byte_budget_ == 0) return;
  // Evict coldest-first until within budget, but always keep at least
  // one resident: a cache whose budget is smaller than its hottest
  // instance must still serve it.
  while (stats_.resident_bytes > byte_budget_ && entries_.size() > 1) {
    const std::string victim_name = lru_.back();
    auto it = entries_.find(victim_name);
    if (it == entries_.end() || it->second.loading) break;
    stats_.resident_bytes -= it->second.bytes;
    --stats_.resident_count;
    ++stats_.evictions;
    lru_.pop_back();
    entries_.erase(it);
    // In-flight requests still pin the instance via their shared_ptr;
    // the bytes leave the accounting now and the heap when they drop.
  }
}

InstanceCacheStats InstanceCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<ResidentInstance> InstanceCache::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ResidentInstance> out;
  out.reserve(lru_.size());
  for (const std::string& name : lru_) {
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.loading) continue;
    out.push_back(
        ResidentInstance{name, it->second.bytes, it->second.requests});
  }
  return out;
}

}  // namespace streamcover
