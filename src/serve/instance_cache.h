// InstanceCache — named, refcounted, immutable resident instances.
//
// The serving layer answers solve requests against instances it keeps
// resident between requests: a request names its instance ("fig12",
// "planted:n=2000,...", or a file path) and the cache resolves that
// name once, Prepare()s the result so every later access is const, and
// hands out shared_ptr pins. Loading is single-flight (concurrent
// requests for the same cold name share one load instead of stampeding
// a 30s disk parse), eviction is LRU by a byte budget, and an evicted
// instance only frees its memory when the last in-flight request drops
// its pin — eviction never invalidates a running solve.
//
// Name grammar:
//   * a path to an existing file          -> Instance::FromFile
//   * "workload[:k=v,...]"                -> WorkloadRegistry factory,
//     with n/m/k/max_set_size/alpha/levels/seed/path params parsed from
//     the suffix (same knobs as the CLI's generate flags).

#ifndef STREAMCOVER_SERVE_INSTANCE_CACHE_H_
#define STREAMCOVER_SERVE_INSTANCE_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/instance.h"

namespace streamcover {

/// Counters for the stats endpoint.
struct InstanceCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t load_failures = 0;
  uint64_t evictions = 0;
  uint64_t resident_bytes = 0;
  uint64_t resident_count = 0;
};

/// True iff `name` is a workload spec with an unparseable "k=v,..."
/// suffix (bad syntax, unknown or duplicate key, bad value) — the
/// caller's request is malformed, as opposed to naming an unknown
/// workload or missing file. Lets the serving layer answer bad_request
/// instead of not_found. Fills *error with the parse diagnostic.
bool IsMalformedInstanceSpec(const std::string& name, std::string* error);

/// One resident entry as reported by List().
struct ResidentInstance {
  std::string name;
  uint64_t bytes = 0;
  uint64_t requests = 0;
};

class InstanceCache {
 public:
  /// `byte_budget` caps the sum of resident_bytes() across entries;
  /// 0 = unlimited. A single instance larger than the budget still
  /// loads (it becomes the only resident and is evicted by the next).
  explicit InstanceCache(uint64_t byte_budget = 0);

  InstanceCache(const InstanceCache&) = delete;
  InstanceCache& operator=(const InstanceCache&) = delete;

  /// Resolves `name` to a pinned resident instance, loading it on miss
  /// (single-flight: concurrent misses on one name share the load).
  /// Returns nullptr with *error set when the name resolves to nothing
  /// loadable. The returned pin keeps the instance alive across
  /// eviction.
  std::shared_ptr<const Instance> Get(const std::string& name,
                                      std::string* error);

  /// Current counters.
  InstanceCacheStats Stats() const;

  /// Resident entries, most recently used first.
  std::vector<ResidentInstance> List() const;

 private:
  struct Entry {
    std::shared_ptr<const Instance> instance;  // null while loading
    uint64_t bytes = 0;
    uint64_t requests = 0;
    bool loading = true;
    bool failed = false;
    std::string load_error;
    std::list<std::string>::iterator lru_pos;
  };

  /// Loads outside the lock; never touches members.
  static std::shared_ptr<const Instance> Load(const std::string& name,
                                              std::string* error);

  void TouchLocked(Entry& entry, const std::string& name);
  void EvictLocked();

  const uint64_t byte_budget_;
  mutable std::mutex mu_;
  std::condition_variable load_done_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  InstanceCacheStats stats_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_SERVE_INSTANCE_CACHE_H_
