// The serve core: bounded queue, worker pool, deadlines, stats.
//
// CoverageServer is transport-agnostic — the stdio and TCP front ends
// in tools/streamcover_serve.cc (and the in-process tests) feed it one
// request line at a time via HandleLine together with a responder
// callback, and it emits exactly one response line per request, from
// whatever thread completes the work.
//
// Overload semantics (the tentpole contract):
//   * control ops (ping/stats/list) answer inline — never queued, so
//     observability survives overload;
//   * work ops (solve/sleep) go through a BOUNDED queue; when it is
//     full the request is rejected immediately with `queue_full`
//     instead of buffering unboundedly (the tarantool/overload-shedding
//     idiom: fail fast, keep tail latency bounded);
//   * a request's deadline covers queue wait + execution: the
//     CancelToken is armed at admission, a request whose deadline fires
//     while still queued is answered `deadline_exceeded` without
//     running, and one that expires mid-solve unwinds cooperatively
//     through the stream layer (RunOptions::cancel) with the same code;
//   * Shutdown() drains: no new work is admitted (`shutting_down`),
//     queued and running requests finish, workers join.

#ifndef STREAMCOVER_SERVE_SERVER_H_
#define STREAMCOVER_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/instance_cache.h"
#include "serve/protocol.h"
#include "util/cancel_token.h"
#include "util/json.h"
#include "util/latency_histogram.h"
#include "util/timer.h"

namespace streamcover {

struct ServerOptions {
  uint32_t workers = 4;        ///< solver worker threads
  size_t queue_capacity = 64;  ///< admitted-but-unstarted request cap
  uint64_t cache_bytes = 0;    ///< instance cache budget; 0 = unlimited
  /// Deadline applied to work requests that carry none; 0 = none.
  int64_t default_deadline_ms = 0;
};

class CoverageServer {
 public:
  /// Receives one serialized response line (no trailing newline). May
  /// be called from any worker thread; front ends serialize their own
  /// writes.
  using Responder = std::function<void(const std::string& line)>;

  explicit CoverageServer(ServerOptions options);
  ~CoverageServer();

  CoverageServer(const CoverageServer&) = delete;
  CoverageServer& operator=(const CoverageServer&) = delete;

  /// Spawns the worker pool. Call once before the first HandleLine.
  void Start();

  /// Graceful drain: rejects new work, finishes admitted work, joins
  /// workers. Idempotent. HandleLine after Shutdown answers
  /// `shutting_down`.
  void Shutdown();

  /// Processes one request line; `respond` receives exactly one
  /// response line, inline (control ops, rejections) or later from a
  /// worker (admitted work).
  void HandleLine(const std::string& line, Responder respond);

  /// The `{"op":"stats"}` payload.
  JsonValue StatsJson() const;

  /// Loads an instance into the cache before serving (fails soft:
  /// returns false with *error, the server still runs).
  bool Preload(const std::string& name, std::string* error);

 private:
  struct Job {
    ServeRequest request;
    Responder respond;
    std::shared_ptr<CancelToken> cancel;  // null = uncancellable
    WallTimer admitted;  // full-request latency starts at admission
  };

  void WorkerLoop();
  void Execute(Job& job);
  void RunSolve(Job& job);
  void RunSleep(Job& job);
  void CountOutcome(const ServeRequest& request, const char* outcome);

  const ServerOptions options_;
  InstanceCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable drained_;
  std::deque<Job> queue_;
  size_t in_flight_ = 0;
  bool accepting_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Counters under mu_; the histogram is internally atomic.
  struct Counters {
    uint64_t received = 0;
    uint64_t ok = 0;
    uint64_t bad_request = 0;
    uint64_t not_found = 0;
    uint64_t queue_full = 0;
    uint64_t deadline_exceeded = 0;
    uint64_t solve_failed = 0;
    uint64_t shutting_down = 0;
    std::map<std::string, uint64_t> per_solver;
    std::map<std::string, uint64_t> per_instance;
  };
  Counters counters_;
  /// Aggregates over the sharded_greedi family's per-run shard/merge
  /// stats, surfaced as the stats endpoint's "shard" section.
  struct ShardCounters {
    uint64_t runs = 0;        ///< solves that reported shard stats
    uint64_t shards_max = 0;  ///< largest shard count observed
    uint64_t candidates = 0;  ///< per-shard candidates, summed over runs
    uint64_t merge_picked = 0;
    uint64_t merge_duplicates_dropped = 0;
  };
  ShardCounters shard_counters_;
  /// Pipelined-scan request accounting, surfaced as the stats
  /// endpoint's "scan" section — lets operators confirm clients are
  /// actually exercising the parallel decode path.
  struct ScanCounters {
    uint64_t pipelined_requests = 0;  ///< solves with scan_threads > 1
    uint64_t scan_threads_max = 0;    ///< largest worker count observed
  };
  ScanCounters scan_counters_;
  LatencyHistogram solve_latency_;   // full request: queue + execution
  LatencyHistogram run_latency_;     // solver execution only
  WallTimer uptime_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_SERVE_SERVER_H_
