// Line-delimited JSON request/response protocol for streamcover_serve.
//
// One request per line, one response line per request, over TCP or
// stdin/stdout — trivially scriptable with `nc` and the CLI alike.
//
// Requests:
//   {"op":"solve","instance":"planted:n=2000","solver":"iter",
//    "deadline_ms":250,"id":"r1",...}          -> run_report-style line
//   {"op":"sleep","sleep_ms":100,"deadline_ms":50}  -> deterministic
//       latency for queue/deadline tests; honors cancellation
//   {"op":"stats"}   -> counters + latency percentiles (never queued)
//   {"op":"list"}    -> solvers + resident instances (never queued)
//   {"op":"ping"}    -> {"ok":true} (never queued)
//
// Responses always carry "ok"; failures carry an error object whose
// "code" is machine-matchable: bad_request, not_found, queue_full,
// deadline_exceeded, solve_failed, shutting_down.
//
// Parsing is strict about types (a string where a number belongs is a
// bad_request, not a silent default) because the peer is untrusted
// network input; unknown keys are ignored for forward compatibility.

#ifndef STREAMCOVER_SERVE_PROTOCOL_H_
#define STREAMCOVER_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/solver_registry.h"
#include "util/cover_kernels.h"
#include "util/json.h"

namespace streamcover {

/// Machine-matchable error codes carried in responses.
inline constexpr const char kErrBadRequest[] = "bad_request";
inline constexpr const char kErrNotFound[] = "not_found";
inline constexpr const char kErrQueueFull[] = "queue_full";
inline constexpr const char kErrDeadlineExceeded[] = "deadline_exceeded";
inline constexpr const char kErrSolveFailed[] = "solve_failed";
inline constexpr const char kErrShuttingDown[] = "shutting_down";

/// A decoded request line.
struct ServeRequest {
  std::string op;        // solve | sleep | stats | list | ping
  std::string id;        // echoed verbatim in the response; may be empty
  std::string instance;  // cache name (path or workload spec)
  std::string solver;    // solver registry name
  /// Absent = no deadline; 0 = already expired (budget spent upstream).
  std::optional<int64_t> deadline_ms;
  /// Include the cover's set ids in the response (they can be large).
  bool include_cover = false;
  int64_t sleep_ms = 0;  // for op == "sleep"
  /// Solver knobs forwarded into RunOptions; defaults match RunOptions.
  double delta = 0.5;
  uint64_t seed = 1;
  double coverage_fraction = 1.0;
  uint32_t threads = 1;
  /// Decode workers for the pipelined binary-disk scan (range
  /// [1, 256]); 1 = serial decode, byte-identical results either way.
  uint32_t scan_threads = 1;
  /// Shard count for the sharded_greedi family (range [1, 1024]).
  uint32_t shards = 1;
  /// Coverage-kernel twin ("scalar" | "word" | "auto"); an unknown
  /// spelling is a bad_request, never a silent default — the ISA tier
  /// itself is runtime-detected, not request-pinned.
  KernelPolicy kernel = KernelPolicy::kWord;
};

/// Parses one request line. On failure returns false and fills *error
/// with a diagnostic (code: bad_request).
bool ParseServeRequest(const std::string& line, ServeRequest* request,
                       std::string* error);

/// {"id":...,"ok":false,"error":{"code":...,"message":...}}.
JsonValue ErrorResponse(const std::string& id, const std::string& code,
                        const std::string& message);

/// Successful solve: run_report-style cells plus ok/id envelope.
JsonValue SolveResponse(const ServeRequest& request, const RunResult& result);

/// {"id":...,"ok":true} for ping / sleep completions.
JsonValue OkResponse(const std::string& id);

}  // namespace streamcover

#endif  // STREAMCOVER_SERVE_PROTOCOL_H_
