#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/solver_registry.h"
#include "util/cover_kernels.h"

namespace streamcover {

CoverageServer::CoverageServer(ServerOptions options)
    : options_(options), cache_(options.cache_bytes) {}

CoverageServer::~CoverageServer() { Shutdown(); }

void CoverageServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (accepting_ || stopping_) return;
  accepting_ = true;
  const uint32_t n = std::max<uint32_t>(1, options_.workers);
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void CoverageServer::Shutdown() {
  std::vector<std::thread> workers;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_ && workers_.empty()) return;
    accepting_ = false;
    // Drain: admitted work (queued or running) completes first.
    drained_.wait(lock,
                  [this] { return queue_.empty() && in_flight_ == 0; });
    stopping_ = true;
    work_ready_.notify_all();
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) worker.join();
  std::lock_guard<std::mutex> lock(mu_);
  stopping_ = false;
}

bool CoverageServer::Preload(const std::string& name, std::string* error) {
  return cache_.Get(name, error) != nullptr;
}

void CoverageServer::CountOutcome(const ServeRequest& request,
                                  const char* outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  if (outcome == std::string_view("ok")) {
    ++counters_.ok;
  } else if (outcome == std::string_view(kErrBadRequest)) {
    ++counters_.bad_request;
  } else if (outcome == std::string_view(kErrNotFound)) {
    ++counters_.not_found;
  } else if (outcome == std::string_view(kErrDeadlineExceeded)) {
    ++counters_.deadline_exceeded;
  } else if (outcome == std::string_view(kErrSolveFailed)) {
    ++counters_.solve_failed;
  }
  if (request.op == "solve") {
    if (!request.solver.empty()) ++counters_.per_solver[request.solver];
    if (!request.instance.empty()) {
      ++counters_.per_instance[request.instance];
    }
  }
}

void CoverageServer::HandleLine(const std::string& line,
                                Responder respond) {
  ServeRequest request;
  std::string parse_error;
  if (!ParseServeRequest(line, &request, &parse_error)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.received;
      ++counters_.bad_request;
    }
    respond(ErrorResponse("", kErrBadRequest, parse_error).Dump(0));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.received;
  }

  // Control ops answer inline so observability survives a full queue.
  if (request.op == "ping") {
    respond(OkResponse(request.id).Dump(0));
    return;
  }
  if (request.op == "stats") {
    JsonValue stats = StatsJson();
    if (!request.id.empty()) {
      JsonValue wrapped = JsonValue::Object();
      wrapped.Set("id", request.id);
      wrapped.Set("ok", true);
      wrapped.Set("stats", std::move(stats));
      respond(wrapped.Dump(0));
    } else {
      stats.Set("ok", true);
      respond(stats.Dump(0));
    }
    return;
  }
  if (request.op == "list") {
    JsonValue response = JsonValue::Object();
    if (!request.id.empty()) response.Set("id", request.id);
    response.Set("ok", true);
    JsonValue solvers = JsonValue::Array();
    for (const std::string& name : SolverRegistry::Global().Names()) {
      solvers.Append(name);
    }
    response.Set("solvers", std::move(solvers));
    JsonValue residents = JsonValue::Array();
    for (const ResidentInstance& resident : cache_.List()) {
      JsonValue entry = JsonValue::Object();
      entry.Set("name", resident.name);
      entry.Set("bytes", resident.bytes);
      entry.Set("requests", resident.requests);
      residents.Append(std::move(entry));
    }
    response.Set("instances", std::move(residents));
    respond(response.Dump(0));
    return;
  }
  if (request.op != "solve" && request.op != "sleep") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.bad_request;
    }
    respond(ErrorResponse(request.id, kErrBadRequest,
                          "unknown op '" + request.op + "'")
                .Dump(0));
    return;
  }

  // Work ops: bounded admission. The deadline clock starts here — queue
  // wait is part of the request's budget.
  Job job;
  job.request = std::move(request);
  job.respond = std::move(respond);
  int64_t deadline_ms = options_.default_deadline_ms > 0
                            ? options_.default_deadline_ms
                            : -1;
  if (job.request.deadline_ms.has_value()) {
    deadline_ms = *job.request.deadline_ms;
  }
  if (deadline_ms >= 0) {
    job.cancel = std::make_shared<CancelToken>(
        CancelToken::Clock::now() + std::chrono::milliseconds(deadline_ms));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) {
      ++counters_.shutting_down;
      job.respond(ErrorResponse(job.request.id, kErrShuttingDown,
                                "server is draining")
                      .Dump(0));
      return;
    }
    if (queue_.size() >= options_.queue_capacity) {
      ++counters_.queue_full;
      job.respond(
          ErrorResponse(job.request.id, kErrQueueFull,
                        "request queue is full (capacity " +
                            std::to_string(options_.queue_capacity) + ")")
              .Dump(0));
      return;
    }
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void CoverageServer::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    Execute(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
    }
  }
}

void CoverageServer::Execute(Job& job) {
  // A deadline that fired while the job sat in the queue: answer
  // without running — the budget is gone either way.
  if (job.cancel != nullptr && job.cancel->cancelled()) {
    CountOutcome(job.request, kErrDeadlineExceeded);
    solve_latency_.Record(job.admitted.ElapsedMillis());
    job.respond(ErrorResponse(job.request.id, kErrDeadlineExceeded,
                              "deadline expired while queued")
                    .Dump(0));
    return;
  }
  if (job.request.op == "sleep") {
    RunSleep(job);
  } else {
    RunSolve(job);
  }
}

void CoverageServer::RunSleep(Job& job) {
  // Deterministic latency for tests: sleeps in small slices so a
  // deadline cancels promptly, like a cooperative solver would.
  const auto slice = std::chrono::milliseconds(2);
  const auto end = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(job.request.sleep_ms);
  while (std::chrono::steady_clock::now() < end) {
    if (job.cancel != nullptr && job.cancel->cancelled()) {
      CountOutcome(job.request, kErrDeadlineExceeded);
      solve_latency_.Record(job.admitted.ElapsedMillis());
      job.respond(ErrorResponse(job.request.id, kErrDeadlineExceeded,
                                "deadline expired mid-sleep")
                      .Dump(0));
      return;
    }
    std::this_thread::sleep_for(slice);
  }
  CountOutcome(job.request, "ok");
  solve_latency_.Record(job.admitted.ElapsedMillis());
  job.respond(OkResponse(job.request.id).Dump(0));
}

void CoverageServer::RunSolve(Job& job) {
  std::string cache_error;
  std::shared_ptr<const Instance> instance =
      cache_.Get(job.request.instance, &cache_error);
  if (instance == nullptr) {
    // Distinguish a request that is syntactically broken (unparseable
    // workload spec — the client's bug) from one naming an unknown
    // workload or absent file (the name's fault): bad_request vs
    // not_found, so clients and dashboards can tell them apart.
    std::string spec_error;
    const bool malformed =
        IsMalformedInstanceSpec(job.request.instance, &spec_error);
    const char* code = malformed ? kErrBadRequest : kErrNotFound;
    CountOutcome(job.request, code);
    solve_latency_.Record(job.admitted.ElapsedMillis());
    job.respond(ErrorResponse(job.request.id, code,
                              "instance '" + job.request.instance +
                                  "': " + cache_error)
                    .Dump(0));
    return;
  }
  RunOptions options;
  options.delta = job.request.delta;
  options.seed = job.request.seed;
  options.coverage_fraction = job.request.coverage_fraction;
  options.threads = job.request.threads;
  options.scan_threads = job.request.scan_threads;
  options.shards = job.request.shards;
  options.kernel = job.request.kernel;
  options.cancel = job.cancel.get();
  if (job.request.scan_threads > 1) {
    std::lock_guard<std::mutex> lock(mu_);
    ++scan_counters_.pipelined_requests;
    scan_counters_.scan_threads_max = std::max<uint64_t>(
        scan_counters_.scan_threads_max, job.request.scan_threads);
  }
  RunResult result =
      RunSolverShared(job.request.solver, *instance, options);
  run_latency_.Record(result.duration_ms);
  solve_latency_.Record(job.admitted.ElapsedMillis());
  if (!result.shard_stats.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++shard_counters_.runs;
    shard_counters_.shards_max = std::max<uint64_t>(
        shard_counters_.shards_max, result.shard_stats.size());
    for (const ShardStat& stat : result.shard_stats) {
      shard_counters_.candidates += stat.candidates;
    }
    shard_counters_.merge_picked += result.merge_stats.picked;
    shard_counters_.merge_duplicates_dropped +=
        result.merge_stats.duplicates_dropped;
  }
  if (!result.ok()) {
    const bool deadline = result.error == kDeadlineExceededError;
    CountOutcome(job.request,
                 deadline ? kErrDeadlineExceeded : kErrSolveFailed);
    job.respond(ErrorResponse(job.request.id,
                              deadline ? kErrDeadlineExceeded
                                       : kErrSolveFailed,
                              result.error)
                    .Dump(0));
    return;
  }
  CountOutcome(job.request, "ok");
  job.respond(SolveResponse(job.request, result).Dump(0));
}

namespace {

JsonValue HistogramJson(const LatencySnapshot& snap) {
  JsonValue out = JsonValue::Object();
  out.Set("count", snap.count);
  out.Set("p50_ms", snap.p50_ms);
  out.Set("p90_ms", snap.p90_ms);
  out.Set("p99_ms", snap.p99_ms);
  out.Set("max_ms", snap.max_ms);
  out.Set("mean_ms", snap.mean_ms);
  return out;
}

}  // namespace

JsonValue CoverageServer::StatsJson() const {
  JsonValue stats = JsonValue::Object();
  stats.Set("uptime_s", uptime_.ElapsedSeconds());
  {
    std::lock_guard<std::mutex> lock(mu_);
    JsonValue requests = JsonValue::Object();
    requests.Set("received", counters_.received);
    requests.Set("ok", counters_.ok);
    requests.Set("bad_request", counters_.bad_request);
    requests.Set("not_found", counters_.not_found);
    requests.Set("queue_full", counters_.queue_full);
    requests.Set("deadline_exceeded", counters_.deadline_exceeded);
    requests.Set("solve_failed", counters_.solve_failed);
    requests.Set("shutting_down", counters_.shutting_down);
    stats.Set("requests", std::move(requests));
    JsonValue queue = JsonValue::Object();
    queue.Set("depth", static_cast<uint64_t>(queue_.size()));
    queue.Set("in_flight", static_cast<uint64_t>(in_flight_));
    queue.Set("capacity", static_cast<uint64_t>(options_.queue_capacity));
    queue.Set("workers", static_cast<uint64_t>(
                             std::max<uint32_t>(1, options_.workers)));
    stats.Set("queue", std::move(queue));
    JsonValue per_solver = JsonValue::Object();
    for (const auto& [name, count] : counters_.per_solver) {
      per_solver.Set(name, count);
    }
    stats.Set("per_solver", std::move(per_solver));
    JsonValue per_instance = JsonValue::Object();
    for (const auto& [name, count] : counters_.per_instance) {
      per_instance.Set(name, count);
    }
    stats.Set("per_instance", std::move(per_instance));
    JsonValue shard = JsonValue::Object();
    shard.Set("runs", shard_counters_.runs);
    shard.Set("shards_max", shard_counters_.shards_max);
    shard.Set("candidates", shard_counters_.candidates);
    shard.Set("merge_picked", shard_counters_.merge_picked);
    shard.Set("merge_duplicates_dropped",
              shard_counters_.merge_duplicates_dropped);
    stats.Set("shard", std::move(shard));
    JsonValue scan = JsonValue::Object();
    scan.Set("pipelined_requests", scan_counters_.pipelined_requests);
    scan.Set("scan_threads_max", scan_counters_.scan_threads_max);
    stats.Set("scan", std::move(scan));
  }
  stats.Set("latency", HistogramJson(solve_latency_.TakeSnapshot()));
  stats.Set("run_latency", HistogramJson(run_latency_.TakeSnapshot()));
  const InstanceCacheStats cache_stats = cache_.Stats();
  JsonValue cache = JsonValue::Object();
  cache.Set("hits", cache_stats.hits);
  cache.Set("misses", cache_stats.misses);
  cache.Set("load_failures", cache_stats.load_failures);
  cache.Set("evictions", cache_stats.evictions);
  cache.Set("resident_bytes", cache_stats.resident_bytes);
  cache.Set("resident_count", cache_stats.resident_count);
  stats.Set("cache", std::move(cache));
  // What `"kernel":"auto"` dispatches to on this host — lets operators
  // confirm the SIMD tier from the stats endpoint alone.
  stats.Set("kernel_isa", KernelIsaName(DetectKernelIsa()));
  return stats;
}

}  // namespace streamcover
