// The §5 reduction: Intersection Set Chasing(n, p) -> SetCover, the
// vehicle of the multi-pass lower bound (Theorem 5.4).
//
// Gadget (Figures 5.2–5.3): per non-merged vertex x two elements in(x),
// out(x); per player i an element e_i; layer-1 vertices of the two
// chasing halves are merged (elements in_v(1,j), in_u(1,j)). Sets:
//   S^j_i    (first half,  i=1..p): {out_v(i+1, j)} ∪ {in_v(i, l) :
//            l ∈ f_i(j)} ∪ {e_i}; the start-vertex encoding puts e_p in
//            S^1_p ONLY (Lemma 5.5's "e_p is only covered by S^1_p").
//   S^j_{p+i} (second half, i=1..p): {in_u(i, j)} ∪ {out_u(i+1, l) :
//            l ∈ f'^{-1}_i(j)} ∪ {e_{p+i}}; the second half's source
//            encoding restricts e_{2p} to the S-sets of the source's
//            successors (j ∈ f'_p(0)) — the binding form of the paper's
//            "all S^j_{2p} contain out(u^1_{p+1})", whose literal element
//            is also kept (see the comment in the .cc).
//   R^j_i    (i=2..p+1): {in_v(i,j), out_v(i,j)}.
//   T^j_i    (i=2..p+1): {in_u(i,j), out_u(i,j)}.
//   T^j_1    (merged):   {in_v(1,j), in_u(1,j)}.
//
// Identities (asserted in tests): |U| = (2p+1)*2n + 2p,
// |F| = (4p+1)*n, and OPT = (2p+1)n+1 iff ISC = 1 else (2p+1)n+2
// (Lemmas 5.5–5.7).

#ifndef STREAMCOVER_COMMLB_ISC_TO_SETCOVER_H_
#define STREAMCOVER_COMMLB_ISC_TO_SETCOVER_H_

#include <cstdint>
#include <vector>

#include "commlb/chasing.h"
#include "setsystem/cover.h"
#include "setsystem/set_system.h"

namespace streamcover {

/// Typed handle on the reduction's sets (for tests and diagnostics).
enum class IscSetKind : uint8_t {
  kSFirst,   ///< S^j_i, first half (player i in 1..p)
  kSSecond,  ///< S^j_{p+i}, second half (player p+i)
  kR,        ///< R^j_i, first-half vertex sets (i in 2..p+1)
  kT,        ///< T^j_i, second-half vertex sets (i in 2..p+1)
  kTMerged,  ///< T^j_1, merged layer
};

/// The reduced instance plus all bookkeeping needed by tests/benches.
struct IscReduction {
  SetSystem system;
  uint32_t n = 0;
  uint32_t p = 0;
  bool isc_value = false;          ///< ground truth EvaluateIsc
  uint64_t expected_opt = 0;       ///< (2p+1)n+1 or (2p+1)n+2
  /// Explicit feasible cover of size expected_opt (Lemma 5.6 for YES;
  /// the two-path + extra-T construction for NO).
  Cover witness_cover;

  /// Set-id lookup: kind, layer index i, vertex j (see IscSetKind).
  struct SetDescriptor {
    IscSetKind kind;
    uint32_t layer;
    uint32_t vertex;
  };
  std::vector<SetDescriptor> set_descriptors;  ///< by set id

  uint32_t SetId(IscSetKind kind, uint32_t layer, uint32_t vertex) const;

 private:
  friend IscReduction ReduceIscToSetCover(const IscInstance&);
  std::vector<uint32_t> set_id_table_;
  uint32_t TableIndex(IscSetKind kind, uint32_t layer,
                      uint32_t vertex) const;
};

/// Builds the reduction; see the header comment for the gadget.
IscReduction ReduceIscToSetCover(const IscInstance& instance);

}  // namespace streamcover

#endif  // STREAMCOVER_COMMLB_ISC_TO_SETCOVER_H_
