#include "commlb/isc_to_setcover.h"

#include <algorithm>

#include "util/check.h"

namespace streamcover {
namespace {

// Element-id layout over |U| = (4p+2)n + 2p elements.
struct ElementIds {
  uint32_t n, p;

  // in_v(i, j), i in [1, p+1].
  uint32_t InV(uint32_t i, uint32_t j) const {
    SC_DCHECK(i >= 1 && i <= p + 1);
    return (i - 1) * n + j;
  }
  // out_v(i, j), i in [2, p+1].
  uint32_t OutV(uint32_t i, uint32_t j) const {
    SC_DCHECK(i >= 2 && i <= p + 1);
    return (p + 1) * n + (i - 2) * n + j;
  }
  // in_u(i, j), i in [1, p+1].
  uint32_t InU(uint32_t i, uint32_t j) const {
    SC_DCHECK(i >= 1 && i <= p + 1);
    return (2 * p + 1) * n + (i - 1) * n + j;
  }
  // out_u(i, j), i in [2, p+1].
  uint32_t OutU(uint32_t i, uint32_t j) const {
    SC_DCHECK(i >= 2 && i <= p + 1);
    return (3 * p + 2) * n + (i - 2) * n + j;
  }
  // e_t, t in [1, 2p].
  uint32_t E(uint32_t t) const {
    SC_DCHECK(t >= 1 && t <= 2 * p);
    return (4 * p + 2) * n + (t - 1);
  }
  uint32_t Total() const { return (4 * p + 2) * n + 2 * p; }
};

// One path per chasing half: vertices[i] (i in 0..p) is the layer-(i+1)
// vertex, with vertices[p] = 0 (the source at layer p+1) and
// vertices[i-1] in f_i(vertices[i]).
std::vector<uint32_t> ExtractPath(const SetChasingInstance& chase,
                                  uint32_t target_layer1_vertex) {
  const uint32_t n = chase.n;
  const uint32_t p = chase.p;
  // reach[i][j] / parent[i][j]: reachability of layer-(i+1) vertex j
  // from the source, with one predecessor (at layer i+2) recorded.
  std::vector<std::vector<int64_t>> parent(
      p + 1, std::vector<int64_t>(n, -1));
  std::vector<DynamicBitset> reach;
  for (uint32_t i = 0; i <= p; ++i) reach.emplace_back(n);
  reach[p].Set(0);
  for (uint32_t i = p; i >= 1; --i) {
    reach[i].ForEach([&](uint32_t j) {
      for (uint32_t l : chase.functions[i - 1][j]) {
        if (!reach[i - 1].Test(l)) {
          reach[i - 1].Set(l);
          parent[i - 1][l] = j;
        }
      }
    });
  }
  SC_CHECK(reach[0].Test(target_layer1_vertex));
  std::vector<uint32_t> path(p + 1);
  path[0] = target_layer1_vertex;
  for (uint32_t i = 0; i < p; ++i) {
    int64_t up = parent[i][path[i]];
    SC_CHECK_GE(up, 0);
    path[i + 1] = static_cast<uint32_t>(up);
  }
  SC_CHECK_EQ(path[p], 0u);
  return path;
}

}  // namespace

uint32_t IscReduction::TableIndex(IscSetKind kind, uint32_t layer,
                                  uint32_t vertex) const {
  switch (kind) {
    case IscSetKind::kSFirst:
      SC_CHECK(layer >= 1 && layer <= p);
      return (layer - 1) * n + vertex;
    case IscSetKind::kSSecond:
      SC_CHECK(layer >= 1 && layer <= p);
      return p * n + (layer - 1) * n + vertex;
    case IscSetKind::kR:
      SC_CHECK(layer >= 2 && layer <= p + 1);
      return 2 * p * n + (layer - 2) * n + vertex;
    case IscSetKind::kT:
      SC_CHECK(layer >= 2 && layer <= p + 1);
      return 3 * p * n + (layer - 2) * n + vertex;
    case IscSetKind::kTMerged:
      SC_CHECK_EQ(layer, 1u);
      return 4 * p * n + vertex;
  }
  SC_CHECK(false);
  return 0;
}

uint32_t IscReduction::SetId(IscSetKind kind, uint32_t layer,
                             uint32_t vertex) const {
  return set_id_table_[TableIndex(kind, layer, vertex)];
}

IscReduction ReduceIscToSetCover(const IscInstance& instance) {
  const uint32_t n = instance.first.n;
  const uint32_t p = instance.first.p;
  SC_CHECK_EQ(instance.second.n, n);
  SC_CHECK_EQ(instance.second.p, p);

  ElementIds ids{n, p};
  IscReduction reduction;
  reduction.n = n;
  reduction.p = p;

  // Preimages of the second half: f'^{-1}_i(j) = {l : j in f'_i(l)}.
  std::vector<std::vector<std::vector<uint32_t>>> preimage(
      p, std::vector<std::vector<uint32_t>>(n));
  for (uint32_t i = 1; i <= p; ++i) {
    for (uint32_t l = 0; l < n; ++l) {
      for (uint32_t j : instance.second.functions[i - 1][l]) {
        preimage[i - 1][j].push_back(l);
      }
    }
  }

  SetSystem::Builder builder(ids.Total());
  reduction.set_id_table_.assign((4 * p + 1) * n, 0);
  auto add_set = [&](IscSetKind kind, uint32_t layer, uint32_t vertex,
                     std::vector<uint32_t> elems) {
    uint32_t id = builder.AddSet(std::move(elems));
    reduction.set_id_table_[reduction.TableIndex(kind, layer, vertex)] = id;
    reduction.set_descriptors.push_back({kind, layer, vertex});
  };

  // S^j_i, first half.
  for (uint32_t i = 1; i <= p; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      std::vector<uint32_t> elems;
      elems.push_back(ids.OutV(i + 1, j));
      for (uint32_t l : instance.first.functions[i - 1][j]) {
        elems.push_back(ids.InV(i, l));
      }
      // Start-vertex encoding: e_p lives only in S^1_p (vertex 0).
      if (i < p || j == 0) elems.push_back(ids.E(i));
      add_set(IscSetKind::kSFirst, i, j, std::move(elems));
    }
  }
  // S^j_{p+i}, second half.
  for (uint32_t i = 1; i <= p; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      std::vector<uint32_t> elems;
      elems.push_back(ids.InU(i, j));
      for (uint32_t l : preimage[i - 1][j]) {
        elems.push_back(ids.OutU(i + 1, l));
      }
      // Source encoding on the second half. The paper states that every
      // S^j_{2p} contains out(u^1_{p+1}); but that element is already
      // covered by the forced T^1_{p+1}, so by itself it cannot anchor
      // the chain (Lemma 5.7's induction would admit covers whose
      // second-half path starts at an arbitrary layer-p vertex). The
      // binding form of the same intent: e_{2p} lives only in the S-sets
      // of the source's successors, S^j_{2p} with j in f'_p(0) — exactly
      // symmetric to e_p living only in S^1_p on the first half. We keep
      // the out(u^1_{p+1}) memberships as stated (harmless) and add the
      // anchor.
      const bool source_successor =
          std::binary_search(instance.second.functions[p - 1][0].begin(),
                             instance.second.functions[p - 1][0].end(), j);
      if (i < p || source_successor) elems.push_back(ids.E(p + i));
      if (i == p) elems.push_back(ids.OutU(p + 1, 0));
      add_set(IscSetKind::kSSecond, i, j, std::move(elems));
    }
  }
  // R^j_i.
  for (uint32_t i = 2; i <= p + 1; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      add_set(IscSetKind::kR, i, j, {ids.InV(i, j), ids.OutV(i, j)});
    }
  }
  // T^j_i.
  for (uint32_t i = 2; i <= p + 1; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      add_set(IscSetKind::kT, i, j, {ids.InU(i, j), ids.OutU(i, j)});
    }
  }
  // Merged T^j_1.
  for (uint32_t j = 0; j < n; ++j) {
    add_set(IscSetKind::kTMerged, 1, j, {ids.InV(1, j), ids.InU(1, j)});
  }

  reduction.system = std::move(builder).Build();
  SC_CHECK_EQ(reduction.system.num_sets(), (4 * p + 1) * n);
  SC_CHECK_EQ(reduction.system.num_elements(), (4 * p + 2) * n + 2 * p);

  // Ground truth and witness cover.
  DynamicBitset a = EvaluateSetChasing(instance.first);
  DynamicBitset b = EvaluateSetChasing(instance.second);
  DynamicBitset both = a;
  both &= b;
  reduction.isc_value = both.Any();
  reduction.expected_opt = static_cast<uint64_t>(2 * p + 1) * n +
                           (reduction.isc_value ? 1 : 2);

  const uint32_t ra = reduction.isc_value
                          ? static_cast<uint32_t>(both.FindFirst())
                          : static_cast<uint32_t>(a.FindFirst());
  const uint32_t rb = reduction.isc_value
                          ? ra
                          : static_cast<uint32_t>(b.FindFirst());
  SC_CHECK_LT(ra, n);
  SC_CHECK_LT(rb, n);
  std::vector<uint32_t> path_a = ExtractPath(instance.first, ra);
  std::vector<uint32_t> path_b = ExtractPath(instance.second, rb);

  Cover& witness = reduction.witness_cover;
  // Layer p+1 of the first half: S^1_p + all R^j_{p+1}.
  witness.set_ids.push_back(reduction.SetId(IscSetKind::kSFirst, p, 0));
  for (uint32_t j = 0; j < n; ++j) {
    witness.set_ids.push_back(reduction.SetId(IscSetKind::kR, p + 1, j));
  }
  // Layers i = 2..p of the first half (path vertex j_i = path_a[i-1]).
  for (uint32_t i = 2; i <= p; ++i) {
    uint32_t ji = path_a[i - 1];
    witness.set_ids.push_back(
        reduction.SetId(IscSetKind::kSFirst, i - 1, ji));
    for (uint32_t j = 0; j < n; ++j) {
      if (j != ji) {
        witness.set_ids.push_back(reduction.SetId(IscSetKind::kR, i, j));
      }
    }
  }
  // Merged layer: S^{rb}_{p+1} plus T^j_1 for the uncovered vertices.
  witness.set_ids.push_back(reduction.SetId(IscSetKind::kSSecond, 1, rb));
  for (uint32_t j = 0; j < n; ++j) {
    if (reduction.isc_value) {
      if (j != ra) {
        witness.set_ids.push_back(
            reduction.SetId(IscSetKind::kTMerged, 1, j));
      }
    } else {
      // ra covers in_v via S-chain, rb covers in_u via S^{rb}_{p+1}; both
      // still need their other element, so ALL merged T's are picked.
      witness.set_ids.push_back(
          reduction.SetId(IscSetKind::kTMerged, 1, j));
    }
  }
  // Layers i = 2..p of the second half (path vertex l_i = path_b[i-1]).
  for (uint32_t i = 2; i <= p; ++i) {
    uint32_t li = path_b[i - 1];
    witness.set_ids.push_back(
        reduction.SetId(IscSetKind::kSSecond, i, li));
    for (uint32_t j = 0; j < n; ++j) {
      if (j != li) {
        witness.set_ids.push_back(reduction.SetId(IscSetKind::kT, i, j));
      }
    }
  }
  // Layer p+1 of the second half: all T^j_{p+1}.
  for (uint32_t j = 0; j < n; ++j) {
    witness.set_ids.push_back(
        reduction.SetId(IscSetKind::kT, p + 1, j));
  }

  SC_CHECK_EQ(witness.set_ids.size(), reduction.expected_opt);
  SC_CHECK(IsFullCover(reduction.system, witness));
  return reduction;
}

}  // namespace streamcover
