#include "commlb/chasing.h"

#include <algorithm>

#include "util/check.h"

namespace streamcover {

DynamicBitset EvaluateSetChasing(const SetChasingInstance& instance) {
  SC_CHECK_GT(instance.n, 0u);
  SC_CHECK_EQ(instance.functions.size(), instance.p);
  DynamicBitset frontier(instance.n);
  frontier.Set(0);  // the paper's start vertex "1"
  // Apply f_p first, then f_{p-1}, ..., f_1.
  for (uint32_t i = instance.p; i >= 1; --i) {
    DynamicBitset next(instance.n);
    frontier.ForEach([&](uint32_t j) {
      for (uint32_t l : instance.functions[i - 1][j]) next.Set(l);
    });
    frontier = next;
  }
  return frontier;
}

bool EvaluateIsc(const IscInstance& instance) {
  DynamicBitset a = EvaluateSetChasing(instance.first);
  DynamicBitset b = EvaluateSetChasing(instance.second);
  a &= b;
  return a.Any();
}

SetChasingInstance GenerateRandomSetChasing(uint32_t n, uint32_t p,
                                            uint32_t max_out_degree,
                                            Rng& rng) {
  SC_CHECK_GE(n, 1u);
  SC_CHECK_GE(p, 1u);
  SC_CHECK_GE(max_out_degree, 1u);
  SetChasingInstance instance;
  instance.n = n;
  instance.p = p;
  instance.functions.resize(p);
  for (uint32_t i = 0; i < p; ++i) {
    instance.functions[i].resize(n);
    for (uint32_t j = 0; j < n; ++j) {
      uint32_t degree = static_cast<uint32_t>(
          rng.UniformInt(1, std::min(max_out_degree, n)));
      instance.functions[i][j] = rng.SampleWithoutReplacement(n, degree);
      std::sort(instance.functions[i][j].begin(),
                instance.functions[i][j].end());
    }
  }
  return instance;
}

IscInstance GenerateRandomIsc(uint32_t n, uint32_t p,
                              uint32_t max_out_degree, Rng& rng) {
  IscInstance instance;
  instance.first = GenerateRandomSetChasing(n, p, max_out_degree, rng);
  instance.second = GenerateRandomSetChasing(n, p, max_out_degree, rng);
  return instance;
}

IscInstance GenerateIscWithOutcome(uint32_t n, uint32_t p,
                                   uint32_t max_out_degree, bool desired,
                                   Rng& rng, uint32_t max_tries) {
  for (uint32_t attempt = 0; attempt < max_tries; ++attempt) {
    IscInstance instance = GenerateRandomIsc(n, p, max_out_degree, rng);
    if (EvaluateIsc(instance) == desired) return instance;
  }
  SC_CHECK(false);  // astronomically unlikely for sane parameters
  return {};
}

uint32_t EvaluatePointerChasing(const PointerChasingInstance& instance) {
  SC_CHECK_EQ(instance.functions.size(), instance.p);
  uint32_t v = 0;
  for (uint32_t i = instance.p; i >= 1; --i) {
    v = instance.functions[i - 1][v];
  }
  return v;
}

PointerChasingInstance GenerateRandomPointerChasing(uint32_t n, uint32_t p,
                                                    Rng& rng) {
  PointerChasingInstance instance;
  instance.n = n;
  instance.p = p;
  instance.functions.resize(p);
  for (uint32_t i = 0; i < p; ++i) {
    instance.functions[i].resize(n);
    for (uint32_t j = 0; j < n; ++j) {
      instance.functions[i][j] = static_cast<uint32_t>(rng.Uniform(n));
    }
  }
  return instance;
}

bool IsRNonInjective(const std::vector<uint32_t>& function, uint32_t r) {
  std::vector<uint32_t> counts;
  for (uint32_t v : function) {
    if (v >= counts.size()) counts.resize(v + 1, 0);
    if (++counts[v] >= r) return true;
  }
  return false;
}

}  // namespace streamcover
