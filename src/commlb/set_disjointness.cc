#include "commlb/set_disjointness.h"

#include <algorithm>

#include "util/check.h"

namespace streamcover {
namespace {

// Packs instance bits row-major: bit (set i, element e) at index i*n+e.
std::vector<uint8_t> PackBits(const DisjointnessInstance& instance,
                              uint64_t keep_bits) {
  const uint64_t total = static_cast<uint64_t>(instance.m()) * instance.n;
  const uint64_t kept = std::min(total, keep_bits);
  std::vector<uint8_t> message((total + 7) / 8, 0);
  for (uint64_t bit = 0; bit < kept; ++bit) {
    uint32_t set = static_cast<uint32_t>(bit / instance.n);
    uint32_t elem = static_cast<uint32_t>(bit % instance.n);
    if (instance.alice_sets[set].Test(elem)) {
      message[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    }
  }
  return message;
}

bool DecodedExistsDisjoint(const std::vector<uint8_t>& message, uint32_t n,
                           uint32_t m, const DynamicBitset& query) {
  for (uint32_t set = 0; set < m; ++set) {
    bool disjoint = true;
    for (uint32_t e = 0; e < n && disjoint; ++e) {
      uint64_t bit = static_cast<uint64_t>(set) * n + e;
      bool member = (message[bit / 8] >> (bit % 8)) & 1u;
      if (member && query.Test(e)) disjoint = false;
    }
    if (disjoint) return true;
  }
  return false;
}

}  // namespace

DisjointnessInstance GenerateRandomDisjointness(uint32_t m, uint32_t n,
                                                Rng& rng) {
  DisjointnessInstance instance;
  instance.n = n;
  instance.alice_sets.reserve(m);
  for (uint32_t i = 0; i < m; ++i) {
    DynamicBitset set(n);
    for (uint32_t e = 0; e < n; ++e) {
      if (rng.Bernoulli(0.5)) set.Set(e);
    }
    instance.alice_sets.push_back(std::move(set));
  }
  return instance;
}

bool IsIntersectingFamily(const DisjointnessInstance& instance) {
  const uint32_t m = instance.m();
  for (uint32_t i = 0; i < m; ++i) {
    for (uint32_t j = 0; j < m; ++j) {
      if (i == j) continue;
      DynamicBitset diff = instance.alice_sets[i];
      diff.AndNot(instance.alice_sets[j]);
      if (diff.None()) return false;  // set i ⊆ set j
    }
  }
  return true;
}

std::vector<uint8_t> NaiveProtocol::Encode(
    const DisjointnessInstance& instance) const {
  return PackBits(instance, UINT64_MAX);
}

uint64_t NaiveProtocol::MessageBits(
    const DisjointnessInstance& instance) const {
  return static_cast<uint64_t>(instance.m()) * instance.n;
}

bool NaiveProtocol::ExistsDisjoint(const std::vector<uint8_t>& message,
                                   uint32_t n, uint32_t m,
                                   const DynamicBitset& query) const {
  return DecodedExistsDisjoint(message, n, m, query);
}

TruncatedProtocol::TruncatedProtocol(uint64_t budget_bits)
    : budget_bits_(budget_bits) {}

std::vector<uint8_t> TruncatedProtocol::Encode(
    const DisjointnessInstance& instance) const {
  return PackBits(instance, budget_bits_);
}

uint64_t TruncatedProtocol::MessageBits(
    const DisjointnessInstance& instance) const {
  return std::min(budget_bits_,
                  static_cast<uint64_t>(instance.m()) * instance.n);
}

bool TruncatedProtocol::ExistsDisjoint(const std::vector<uint8_t>& message,
                                       uint32_t n, uint32_t m,
                                       const DynamicBitset& query) const {
  return DecodedExistsDisjoint(message, n, m, query);
}

}  // namespace streamcover
