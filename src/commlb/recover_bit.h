// algRecoverBit (Figure 3.1): Bob reconstructs Alice's entire random set
// family from a one-way Set Disjointness protocol, using only
// algExistsDisj queries against the single message s.
//
// Mechanism: a random query set rb of size ~log2(m)+2 is, with
// non-negligible probability, disjoint from *exactly one* Alice set r
// (Lemma 3.3). When that happens, probing rb ∪ {e} for every e ∈ U \ rb
// identifies r exactly: the probe reports "no disjoint set" iff e ∈ r.
// A pruning step (keep ⊆-maximal discoveries) removes the rare probes
// that were disjoint from several sets at once — those discover the
// intersection of the disjoint sets, a strict subset of each true set
// whenever the family is intersecting (Observation 3.4, whp).
// Full recovery of Ω(2^{mn}) distinguishable inputs implies the message
// has Ω(mn) bits (Theorem 3.2).

#ifndef STREAMCOVER_COMMLB_RECOVER_BIT_H_
#define STREAMCOVER_COMMLB_RECOVER_BIT_H_

#include <cstdint>
#include <vector>

#include "commlb/set_disjointness.h"
#include "util/rng.h"

namespace streamcover {

/// Knobs for the recovery experiment.
struct RecoverBitOptions {
  /// Size of each random probe rb; 0 = automatic (ceil(log2 m) + 2, the
  /// paper's c1*log m with the constant made explicit).
  uint32_t query_size = 0;
  /// Hard cap on algExistsDisj invocations.
  uint64_t query_budget = 2'000'000;
  uint64_t seed = 1;
};

/// Outcome of one recovery run.
struct RecoverBitResult {
  /// Recovered sets (each sorted), after pruning.
  std::vector<std::vector<uint32_t>> recovered;
  uint64_t queries_used = 0;
  uint64_t message_bits = 0;
  /// True iff the recovered family equals Alice's family exactly.
  bool fully_recovered = false;
  /// Fraction of Alice's sets present among the recovered ones.
  double recovered_fraction = 0.0;
};

/// Runs algRecoverBit against `protocol` on `instance`.
RecoverBitResult RunRecoverBit(const DisjointnessInstance& instance,
                               const OneWayProtocol& protocol,
                               const RecoverBitOptions& options);

}  // namespace streamcover

#endif  // STREAMCOVER_COMMLB_RECOVER_BIT_H_
