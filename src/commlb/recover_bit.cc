#include "commlb/recover_bit.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/mathutil.h"

namespace streamcover {
namespace {

// Is a ⊆ b for sorted vectors?
bool IsSubset(const std::vector<uint32_t>& a,
              const std::vector<uint32_t>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

RecoverBitResult RunRecoverBit(const DisjointnessInstance& instance,
                               const OneWayProtocol& protocol,
                               const RecoverBitOptions& options) {
  const uint32_t n = instance.n;
  const uint32_t m = instance.m();
  SC_CHECK_GE(m, 1u);
  Rng rng(options.seed);

  const uint32_t query_size =
      options.query_size > 0
          ? options.query_size
          : std::min(n, CeilLog2(std::max(m, 2u)) + 2);
  SC_CHECK_LE(query_size, n);

  // Alice speaks once.
  const std::vector<uint8_t> message = protocol.Encode(instance);

  RecoverBitResult result;
  result.message_bits = protocol.MessageBits(instance);

  auto exists_disjoint = [&](const DynamicBitset& query) {
    ++result.queries_used;
    return protocol.ExistsDisjoint(message, n, m, query);
  };

  std::vector<std::vector<uint32_t>> family;  // pruned discoveries

  // Ground truth, used only for the experiment-side early exit below
  // (stop once recovery is complete). It never influences what gets
  // recovered — only the reported query count, which thereby measures
  // "queries until full recovery".
  std::set<std::vector<uint32_t>> truth;
  for (const auto& s : instance.alice_sets) truth.insert(s.ToVector());
  auto family_matches_truth = [&] {
    if (family.size() != truth.size()) return false;
    for (const auto& r : family) {
      if (truth.count(r) == 0) return false;
    }
    return true;
  };

  while (result.queries_used + n < options.query_budget) {
    if (family_matches_truth()) break;
    // Random probe rb of size query_size.
    std::vector<uint32_t> rb_elems =
        rng.SampleWithoutReplacement(n, query_size);
    DynamicBitset rb(n);
    for (uint32_t e : rb_elems) rb.Set(e);

    if (!exists_disjoint(rb)) continue;

    // Discover the set (or union of sets) disjoint from rb: element e
    // belongs iff adding it to rb kills all disjoint sets.
    std::vector<uint32_t> discovered;
    for (uint32_t e = 0; e < n; ++e) {
      if (rb.Test(e)) continue;
      rb.Set(e);
      if (!exists_disjoint(rb)) discovered.push_back(e);
      rb.Reset(e);
      if (result.queries_used >= options.query_budget) break;
    }
    if (result.queries_used >= options.query_budget) break;

    // Pruning step. When rb is disjoint from k >= 2 Alice sets, the
    // element-probe loop discovers their INTERSECTION (adding e must
    // kill *every* disjoint set for ExistsDisjoint to flip), which in an
    // intersecting family is a strict subset of each true set. So we
    // keep ⊆-maximal discoveries: true sets displace their spurious
    // intersections and are never displaced themselves (a discovery
    // strictly containing a true set would make the family
    // non-intersecting, which Observation 3.4 rules out whp).
    bool dominated = false;
    for (const auto& r : family) {
      if (IsSubset(discovered, r)) {
        dominated = true;  // a known set already contains it: drop
        break;
      }
    }
    if (!dominated) {
      std::erase_if(family, [&](const std::vector<uint32_t>& r) {
        return IsSubset(r, discovered);
      });
      family.push_back(discovered);
    }
  }

  // Score against the ground truth.
  size_t hits = 0;
  for (const auto& r : family) {
    if (truth.count(r) > 0) ++hits;
  }
  result.recovered = std::move(family);
  result.recovered_fraction =
      truth.empty() ? 1.0
                    : static_cast<double>(hits) /
                          static_cast<double>(truth.size());
  result.fully_recovered =
      hits == truth.size() && result.recovered.size() == truth.size();
  return result;
}

}  // namespace streamcover
