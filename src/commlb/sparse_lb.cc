#include "commlb/sparse_lb.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/mathutil.h"

namespace streamcover {
namespace {

// Random permutation of [0, n); if fix_zero, then perm[0] == 0.
std::vector<uint32_t> RandomPermutation(uint32_t n, bool fix_zero,
                                        Rng& rng) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  rng.Shuffle(perm);
  if (fix_zero) {
    auto it = std::find(perm.begin(), perm.end(), 0u);
    std::swap(*it, perm[0]);
  }
  return perm;
}

std::vector<uint32_t> Invert(const std::vector<uint32_t>& perm) {
  std::vector<uint32_t> inv(perm.size());
  for (uint32_t i = 0; i < perm.size(); ++i) inv[perm[i]] = i;
  return inv;
}

// Scrambles one pointer-chasing chain: layer permutations perms[0..p]
// (perms[i-1] is pi_i over layer i), g_i = pi_i ∘ f_i ∘ pi_{i+1}^{-1}.
std::vector<std::vector<uint32_t>> ScrambleChain(
    const PointerChasingInstance& chain,
    const std::vector<std::vector<uint32_t>>& perms) {
  const uint32_t n = chain.n;
  const uint32_t p = chain.p;
  SC_CHECK_EQ(perms.size(), p + 1);
  std::vector<std::vector<uint32_t>> scrambled(
      p, std::vector<uint32_t>(n, 0));
  for (uint32_t i = 1; i <= p; ++i) {
    const auto& pi_i = perms[i - 1];
    const auto inv_next = Invert(perms[i]);
    for (uint32_t a = 0; a < n; ++a) {
      scrambled[i - 1][a] = pi_i[chain.functions[i - 1][inv_next[a]]];
    }
  }
  return scrambled;
}

}  // namespace

OrtOverlayInstance GenerateOrtOverlay(uint32_t n, uint32_t p, uint32_t t,
                                      Rng& rng) {
  SC_CHECK_GE(t, 1u);
  OrtOverlayInstance overlay;
  overlay.t = t;
  overlay.r = CeilLog2(std::max(n, 2u)) + 1;

  // Overlay accumulators: per layer function, per vertex, a set of
  // images (the union over the t instances).
  auto make_accumulator = [&] {
    SetChasingInstance chase;
    chase.n = n;
    chase.p = p;
    chase.functions.assign(
        p, std::vector<std::vector<uint32_t>>(n));
    return chase;
  };
  overlay.isc.first = make_accumulator();
  overlay.isc.second = make_accumulator();

  for (uint32_t j = 0; j < t; ++j) {
    PointerChasingInstance first = GenerateRandomPointerChasing(n, p, rng);
    PointerChasingInstance second = GenerateRandomPointerChasing(n, p, rng);
    overlay.epc_equal.push_back(EvaluatePointerChasing(first) ==
                                EvaluatePointerChasing(second));

    for (const auto& chain : {first, second}) {
      for (const auto& f : chain.functions) {
        if (IsRNonInjective(f, overlay.r)) overlay.r_non_injective = true;
      }
    }

    // Per-layer permutations: layer 1 (the equality layer) shares sigma_j
    // across the two chains; layer p+1 fixes the start vertex 0.
    std::vector<std::vector<uint32_t>> perms_a(p + 1), perms_b(p + 1);
    std::vector<uint32_t> sigma = RandomPermutation(n, false, rng);
    perms_a[0] = sigma;
    perms_b[0] = sigma;
    for (uint32_t i = 1; i < p; ++i) {
      perms_a[i] = RandomPermutation(n, false, rng);
      perms_b[i] = RandomPermutation(n, false, rng);
    }
    perms_a[p] = RandomPermutation(n, true, rng);
    perms_b[p] = RandomPermutation(n, true, rng);

    auto ga = ScrambleChain(first, perms_a);
    auto gb = ScrambleChain(second, perms_b);
    for (uint32_t i = 0; i < p; ++i) {
      for (uint32_t a = 0; a < n; ++a) {
        overlay.isc.first.functions[i][a].push_back(ga[i][a]);
        overlay.isc.second.functions[i][a].push_back(gb[i][a]);
      }
    }
  }

  // Sort/dedup the overlaid image sets.
  for (auto* chase : {&overlay.isc.first, &overlay.isc.second}) {
    for (auto& fn : chase->functions) {
      for (auto& images : fn) {
        std::sort(images.begin(), images.end());
        images.erase(std::unique(images.begin(), images.end()),
                     images.end());
      }
    }
  }

  overlay.ort_value = std::any_of(overlay.epc_equal.begin(),
                                  overlay.epc_equal.end(),
                                  [](bool b) { return b; });
  return overlay;
}

uint32_t MaxSetSize(const SetSystem& system) {
  uint32_t max_size = 0;
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    max_size = std::max(max_size, static_cast<uint32_t>(system.SetSize(s)));
  }
  return max_size;
}

}  // namespace streamcover
