// (Many vs One)-Set Disjointness and one-way protocols (§3).
//
// Alice holds m random subsets of [n]; Bob holds a query set and must
// decide whether some Alice set is disjoint from it, after receiving a
// single message from Alice. Theorem 3.2: any protocol with error
// O(m^-c) needs Ω(mn) bits — proved by showing Bob can *decode all of
// Alice's mn random bits* from the message (algRecoverBit). We realize
// the naive Ω(mn)-bit protocol and budget-truncated variants whose
// decode failure exhibits the contrapositive.

#ifndef STREAMCOVER_COMMLB_SET_DISJOINTNESS_H_
#define STREAMCOVER_COMMLB_SET_DISJOINTNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitset.h"
#include "util/rng.h"

namespace streamcover {

/// Alice's input: m subsets of [0, n).
struct DisjointnessInstance {
  uint32_t n = 0;
  std::vector<DynamicBitset> alice_sets;

  uint32_t m() const { return static_cast<uint32_t>(alice_sets.size()); }
};

/// Each element joins each set independently with probability 1/2 (the
/// distribution of Theorem 3.2).
DisjointnessInstance GenerateRandomDisjointness(uint32_t m, uint32_t n,
                                                Rng& rng);

/// A family is intersecting iff no member contains another
/// (Observation 3.4's precondition for full recovery).
bool IsIntersectingFamily(const DisjointnessInstance& instance);

/// One-way protocol: Alice encodes once; Bob answers disjointness
/// queries from the message alone (algExistsDisj).
class OneWayProtocol {
 public:
  virtual ~OneWayProtocol() = default;

  /// Alice -> Bob message, as packed bits.
  virtual std::vector<uint8_t> Encode(
      const DisjointnessInstance& instance) const = 0;

  /// Size of the message in bits (the communication cost).
  virtual uint64_t MessageBits(const DisjointnessInstance& instance) const = 0;

  /// Bob: does some Alice set (as reconstructible from `message`) avoid
  /// `query` entirely? `n` and `m` are public parameters of the game.
  virtual bool ExistsDisjoint(const std::vector<uint8_t>& message,
                              uint32_t n, uint32_t m,
                              const DynamicBitset& query) const = 0;

  virtual std::string name() const = 0;
};

/// The naive exact protocol: message = all m*n bits.
class NaiveProtocol : public OneWayProtocol {
 public:
  std::vector<uint8_t> Encode(
      const DisjointnessInstance& instance) const override;
  uint64_t MessageBits(const DisjointnessInstance& instance) const override;
  bool ExistsDisjoint(const std::vector<uint8_t>& message, uint32_t n,
                      uint32_t m, const DynamicBitset& query) const override;
  std::string name() const override { return "naive-mn"; }
};

/// Lossy protocol: transmits only the first `budget_bits` of the naive
/// encoding; missing bits decode as 0 (elements assumed absent). Used to
/// demonstrate that sub-linear messages cannot support recovery.
class TruncatedProtocol : public OneWayProtocol {
 public:
  explicit TruncatedProtocol(uint64_t budget_bits);

  std::vector<uint8_t> Encode(
      const DisjointnessInstance& instance) const override;
  uint64_t MessageBits(const DisjointnessInstance& instance) const override;
  bool ExistsDisjoint(const std::vector<uint8_t>& message, uint32_t n,
                      uint32_t m, const DynamicBitset& query) const override;
  std::string name() const override { return "truncated"; }

 private:
  uint64_t budget_bits_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_COMMLB_SET_DISJOINTNESS_H_
