// Communication problems underlying the multi-pass lower bounds (§5–§6):
// Pointer Chasing, Set Chasing, Intersection Set Chasing (Definitions
// 5.1–5.2) and their evaluation. Vertices are 0-based: the paper's start
// vertex "1" is our index 0.

#ifndef STREAMCOVER_COMMLB_CHASING_H_
#define STREAMCOVER_COMMLB_CHASING_H_

#include <cstdint>
#include <vector>

#include "util/bitset.h"
#include "util/rng.h"

namespace streamcover {

/// One Set Chasing instance: p functions f_1..f_p : [n] -> 2^[n]
/// (Definition 5.1). functions[i-1][j] = f_i(j), sorted ascending,
/// always non-empty for generated instances.
struct SetChasingInstance {
  uint32_t n = 0;
  uint32_t p = 0;
  std::vector<std::vector<std::vector<uint32_t>>> functions;
};

/// Evaluates ~f_1(~f_2(... ~f_p({0}) ...)): the subset of layer-1
/// vertices reachable from vertex 0 of layer p+1.
DynamicBitset EvaluateSetChasing(const SetChasingInstance& instance);

/// Intersection Set Chasing (Definition 5.2): two Set Chasing instances;
/// output 1 iff their evaluations intersect.
struct IscInstance {
  SetChasingInstance first;
  SetChasingInstance second;
};

/// The ISC output bit.
bool EvaluateIsc(const IscInstance& instance);

/// Random Set Chasing instance: each f_i(j) is a uniform non-empty
/// subset with |f_i(j)| ~ Uniform[1, max_out_degree].
SetChasingInstance GenerateRandomSetChasing(uint32_t n, uint32_t p,
                                            uint32_t max_out_degree,
                                            Rng& rng);

/// Random ISC instance (both halves drawn independently).
IscInstance GenerateRandomIsc(uint32_t n, uint32_t p,
                              uint32_t max_out_degree, Rng& rng);

/// Rejection-samples random ISC instances until the output equals
/// `desired`; CHECK-fails after `max_tries`. Deterministic per rng.
IscInstance GenerateIscWithOutcome(uint32_t n, uint32_t p,
                                   uint32_t max_out_degree, bool desired,
                                   Rng& rng, uint32_t max_tries = 10000);

/// One Pointer Chasing instance (Definition 6.2): functions [n] -> [n].
struct PointerChasingInstance {
  uint32_t n = 0;
  uint32_t p = 0;
  std::vector<std::vector<uint32_t>> functions;  ///< functions[i-1][j]
};

/// Evaluates f_1(f_2(... f_p(0) ...)).
uint32_t EvaluatePointerChasing(const PointerChasingInstance& instance);

/// Uniformly random pointer-chasing functions.
PointerChasingInstance GenerateRandomPointerChasing(uint32_t n, uint32_t p,
                                                    Rng& rng);

/// Definition 6.1: is f r-non-injective (some value with >= r preimages)?
bool IsRNonInjective(const std::vector<uint32_t>& function, uint32_t r);

}  // namespace streamcover

#endif  // STREAMCOVER_COMMLB_CHASING_H_
