// Sparse Set Cover lower-bound instances (§6, Theorem 6.6).
//
// ORt(Equal Limited Pointer Chasing) overlays t pointer-chasing instance
// pairs — each scrambled by per-layer random permutations (the paper's
// footnote 5: player i's function in instance j is
// pi_{i,j} ∘ f_{i,j} ∘ pi^{-1}_{i+1,j}) — into one Intersection Set
// Chasing instance with f_i(a) = ∪_j f_{i,j}(a). Reducing that ISC
// instance through §5 yields a SetCover instance whose sets have size
// O~(t): first-half S-sets have <= t+2 elements and second-half S-sets
// <= rt+2 where r = O(log n) bounds preimage sizes (Definition 6.1's
// r-non-injectivity threshold). The §5 dichotomy still decides
// ORt-equality, so exact algorithms on s-sparse instances inherit the
// Ω~(ms) bound.

#ifndef STREAMCOVER_COMMLB_SPARSE_LB_H_
#define STREAMCOVER_COMMLB_SPARSE_LB_H_

#include <cstdint>
#include <vector>

#include "commlb/chasing.h"
#include "commlb/isc_to_setcover.h"

namespace streamcover {

/// The overlay construction plus its ground truth.
struct OrtOverlayInstance {
  IscInstance isc;            ///< the overlaid ISC instance
  uint32_t t = 0;             ///< number of overlaid EPC instances
  /// Per-instance Equal Pointer Chasing outcomes (first == second).
  std::vector<bool> epc_equal;
  /// OR over epc_equal — the ORt(EPC) answer the reduction must decide.
  bool ort_value = false;
  /// Whether any scrambled function is r-non-injective for the r used
  /// (the "Limited" promise; whp false for r ~ log n).
  bool r_non_injective = false;
  uint32_t r = 0;
};

/// Builds the overlay of `t` random Equal Pointer Chasing(n, p)
/// instances. All permutations fix vertex 0 at the outer layers so the
/// chases share their start and the layer-1 equality test is preserved
/// per instance.
OrtOverlayInstance GenerateOrtOverlay(uint32_t n, uint32_t p, uint32_t t,
                                      Rng& rng);

/// Maximum set size of `system` — the sparsity s of Theorem 6.6.
uint32_t MaxSetSize(const SetSystem& system);

}  // namespace streamcover

#endif  // STREAMCOVER_COMMLB_SPARSE_LB_H_
