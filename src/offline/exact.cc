#include "offline/exact.h"

#include <algorithm>
#include <vector>

#include "offline/greedy.h"
#include "util/bitset.h"
#include "util/check.h"

namespace streamcover {
namespace {

// Search state shared across the recursion.
struct SearchContext {
  const SetSystem* system;
  const InvertedIndex* index;
  uint64_t max_nodes;
  uint64_t nodes = 0;
  bool budget_exhausted = false;
  std::vector<uint32_t> best;       // incumbent cover (set ids)
  std::vector<uint32_t> current;    // partial cover on the search path
  std::vector<bool> alive;          // sets not removed by dominance
};

size_t ResidualGain(const SetSystem& system, uint32_t set_id,
                    const DynamicBitset& uncovered) {
  size_t gain = 0;
  for (uint32_t e : system.GetSet(set_id)) {
    if (uncovered.Test(e)) ++gain;
  }
  return gain;
}

// Lower bound #1: every set covers at most max_gain uncovered elements.
size_t CoverageLowerBound(const SetSystem& system,
                          const std::vector<bool>& alive,
                          const DynamicBitset& uncovered) {
  size_t residual = uncovered.Count();
  if (residual == 0) return 0;
  size_t max_gain = 0;
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    if (!alive[s]) continue;
    max_gain = std::max(max_gain, ResidualGain(system, s, uncovered));
  }
  if (max_gain == 0) return residual;  // infeasible residual; forces prune
  return (residual + max_gain - 1) / max_gain;
}

// Lower bound #2: greedy packing of "witness" elements no two of which
// share a live set; each witness needs a distinct set in any cover.
size_t PackingLowerBound(const SetSystem& system, const InvertedIndex& index,
                         const std::vector<bool>& alive,
                         const DynamicBitset& uncovered) {
  std::vector<bool> set_blocked(system.num_sets(), false);
  size_t witnesses = 0;
  uncovered.ForEach([&](uint32_t e) {
    for (uint32_t s : index.SetsContaining(e)) {
      if (alive[s] && set_blocked[s]) return;
    }
    ++witnesses;
    for (uint32_t s : index.SetsContaining(e)) {
      if (alive[s]) set_blocked[s] = true;
    }
  });
  return witnesses;
}

void TakeSet(SearchContext& ctx, uint32_t set_id, DynamicBitset& uncovered,
             std::vector<uint32_t>& newly_covered) {
  ctx.current.push_back(set_id);
  for (uint32_t e : ctx.system->GetSet(set_id)) {
    if (uncovered.Test(e)) {
      uncovered.Reset(e);
      newly_covered.push_back(e);
    }
  }
}

void UntakeSet(SearchContext& ctx, DynamicBitset& uncovered,
               const std::vector<uint32_t>& newly_covered) {
  ctx.current.pop_back();
  for (uint32_t e : newly_covered) uncovered.Set(e);
}

void Search(SearchContext& ctx, DynamicBitset& uncovered) {
  if (ctx.budget_exhausted) return;
  if (++ctx.nodes > ctx.max_nodes) {
    ctx.budget_exhausted = true;
    return;
  }
  if (uncovered.None()) {
    if (ctx.current.size() < ctx.best.size()) ctx.best = ctx.current;
    return;
  }
  // The residual is non-empty, so any completion uses >= 1 more set.
  if (ctx.current.size() + 1 >= ctx.best.size()) return;

  // Unit propagation: find an uncovered element with the fewest live
  // candidate sets; if zero, infeasible; if one, the set is forced.
  uint32_t branch_element = 0;
  size_t branch_degree = SIZE_MAX;
  uncovered.ForEach([&](uint32_t e) {
    size_t degree = 0;
    for (uint32_t s : ctx.index->SetsContaining(e)) {
      if (ctx.alive[s]) ++degree;
    }
    if (degree < branch_degree) {
      branch_degree = degree;
      branch_element = e;
    }
  });
  if (branch_degree == 0) return;  // uncoverable residual element
  if (branch_degree == 1) {
    uint32_t forced = UINT32_MAX;
    for (uint32_t s : ctx.index->SetsContaining(branch_element)) {
      if (ctx.alive[s]) forced = s;
    }
    std::vector<uint32_t> newly;
    TakeSet(ctx, forced, uncovered, newly);
    // Forced moves do not consume a decision level; recurse directly.
    Search(ctx, uncovered);
    UntakeSet(ctx, uncovered, newly);
    return;
  }

  // Bounds.
  size_t lb1 = CoverageLowerBound(*ctx.system, ctx.alive, uncovered);
  if (ctx.current.size() + lb1 >= ctx.best.size()) return;
  size_t lb2 =
      PackingLowerBound(*ctx.system, *ctx.index, ctx.alive, uncovered);
  if (ctx.current.size() + lb2 >= ctx.best.size()) return;

  // Branch over the candidate sets of the min-degree element, most
  // promising (largest residual gain) first. Standard completeness
  // argument: every cover must include one of these candidates.
  std::vector<std::pair<size_t, uint32_t>> candidates;
  for (uint32_t s : ctx.index->SetsContaining(branch_element)) {
    if (!ctx.alive[s]) continue;
    candidates.push_back({ResidualGain(*ctx.system, s, uncovered), s});
  }
  std::sort(candidates.rbegin(), candidates.rend());
  // Exclusion refinement: after exploring candidate i, forbid it in the
  // remaining branches (any cover using it was already enumerated).
  std::vector<uint32_t> disabled;
  for (auto& [gain, s] : candidates) {
    std::vector<uint32_t> newly;
    TakeSet(ctx, s, uncovered, newly);
    Search(ctx, uncovered);
    UntakeSet(ctx, uncovered, newly);
    if (ctx.budget_exhausted) break;
    ctx.alive[s] = false;
    disabled.push_back(s);
  }
  for (uint32_t s : disabled) ctx.alive[s] = true;
}

}  // namespace

ExactSolver::ExactSolver(uint64_t max_nodes) : max_nodes_(max_nodes) {}

OfflineResult ExactSolver::Solve(const SetSystem& system) const {
  // Greedy incumbent; also handles uncoverable elements by ignoring them.
  OfflineResult greedy = GreedySolver().Solve(system);

  // Restrict attention to coverable elements.
  DynamicBitset uncovered(system.num_elements());
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    for (uint32_t e : system.GetSet(s)) uncovered.Set(e);
  }

  InvertedIndex index(system);
  SearchContext ctx;
  ctx.system = &system;
  ctx.index = &index;
  ctx.max_nodes = max_nodes_;
  ctx.best = greedy.cover.set_ids;
  if (ctx.best.empty() && uncovered.Any()) {
    // Greedy failed to cover anything coverable — cannot happen, but keep
    // the incumbent meaningful.
    ctx.best.resize(system.num_sets() + 1);
  }
  ctx.alive.assign(system.num_sets(), true);

  // Root dominance elimination: drop sets that are subsets of another
  // set (ties broken by id so exactly one of two equal sets survives).
  // Quadratic in m, so only applied on instance sizes B&B is meant for.
  if (system.num_sets() <= 4096) {
    std::vector<uint32_t> order(system.num_sets());
    for (uint32_t s = 0; s < system.num_sets(); ++s) order[s] = s;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return system.SetSize(a) > system.SetSize(b);
    });
    for (uint32_t i = 0; i < order.size(); ++i) {
      uint32_t small = order[i];
      if (system.SetSize(small) == 0) {
        ctx.alive[small] = false;
        continue;
      }
      auto small_elems = system.GetSet(small);
      for (uint32_t j = 0; j < i; ++j) {
        uint32_t big = order[j];
        if (!ctx.alive[big]) continue;
        if (system.SetSize(big) < system.SetSize(small)) continue;
        if (system.SetSize(big) == system.SetSize(small) && big >= small) {
          continue;  // equal sets: keep the smaller id
        }
        bool subset = true;
        for (uint32_t e : small_elems) {
          if (!system.Contains(big, e)) {
            subset = false;
            break;
          }
        }
        if (subset) {
          ctx.alive[small] = false;
          break;
        }
      }
    }
  }

  if (uncovered.Any()) {
    Search(ctx, uncovered);
  } else {
    ctx.best.clear();
  }

  OfflineResult result;
  result.cover.set_ids = ctx.best;
  result.proven_optimal = !ctx.budget_exhausted;
  result.work = ctx.nodes;
  return result;
}

}  // namespace streamcover
