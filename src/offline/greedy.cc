#include "offline/greedy.h"

#include <cmath>
#include <queue>
#include <utility>

#include "util/check.h"

namespace streamcover {

OfflineResult GreedySolver::Solve(const SetSystem& system) const {
  DynamicBitset all(system.num_elements(), true);
  return SolveTargets(system, all);
}

double GreedySolver::Rho(uint32_t num_elements) const {
  return std::log(static_cast<double>(std::max(num_elements, 2u))) + 1.0;
}

OfflineResult GreedySolver::SolveTargets(const SetSystem& system,
                                         const DynamicBitset& targets) {
  SC_CHECK_EQ(targets.size(), system.num_elements());
  OfflineResult result;
  DynamicBitset uncovered = targets;

  // Clear target bits for elements no set contains (uncoverable).
  {
    DynamicBitset coverable(system.num_elements());
    for (uint32_t s = 0; s < system.num_sets(); ++s) {
      for (uint32_t e : system.GetSet(s)) coverable.Set(e);
    }
    uncovered &= coverable;
  }

  // Max-heap of (stale gain, set id). Gains only decrease over time, so a
  // popped entry whose recomputed gain still beats the heap top is truly
  // the best set right now.
  using Entry = std::pair<size_t, uint32_t>;
  std::priority_queue<Entry> heap;
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    size_t gain = 0;
    for (uint32_t e : system.GetSet(s)) {
      if (uncovered.Test(e)) ++gain;
    }
    if (gain > 0) heap.push({gain, s});
  }

  while (uncovered.Any() && !heap.empty()) {
    auto [stale_gain, s] = heap.top();
    heap.pop();
    ++result.work;
    size_t gain = 0;
    for (uint32_t e : system.GetSet(s)) {
      if (uncovered.Test(e)) ++gain;
    }
    if (gain == 0) continue;
    if (!heap.empty() && gain < heap.top().first) {
      heap.push({gain, s});  // stale; re-queue with the fresh gain
      continue;
    }
    result.cover.set_ids.push_back(s);
    for (uint32_t e : system.GetSet(s)) uncovered.Reset(e);
  }
  return result;
}

}  // namespace streamcover
