#include "offline/greedy.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "setsystem/transposed_index.h"
#include "util/check.h"
#include "util/cover_kernels.h"
#include "util/heap.h"

namespace streamcover {

OfflineResult GreedySolver::Solve(const SetSystem& system) const {
  DynamicBitset all(system.num_elements(), true);
  return SolveTargets(system, all, kernel_);
}

double GreedySolver::Rho(uint32_t num_elements) const {
  return std::log(static_cast<double>(std::max(num_elements, 2u))) + 1.0;
}

OfflineResult GreedySolver::SolveTargets(const SetSystem& system,
                                         const DynamicBitset& targets,
                                         KernelPolicy kernel) {
  SC_CHECK_EQ(targets.size(), system.num_elements());
  OfflineResult result;
  DynamicBitset uncovered = targets;

  // Element → sets index over the whole system: one count sweep + one
  // fill sweep. Its columns drive both the coverability pre-pass (an
  // element with an empty column is uncoverable) and the exact
  // decremental gains below.
  TransposedIndex::Builder builder(system.num_elements());
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    builder.CountSet(system.GetSet(s));
  }
  builder.PrepareFill();
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    builder.FillSet(s, system.GetSet(s));
  }
  const TransposedIndex index = std::move(builder).Build();

  // Clear target bits for elements no set contains (uncoverable).
  for (uint32_t e = 0; e < system.num_elements(); ++e) {
    if (!index.Coverable(e)) uncovered.Reset(e);
  }

  GainTracker gains(&index, system.num_sets());
  gains.InitFromMask(uncovered);

  // Flat max-heap of lazily aged entries packed as (gain << 32 | set
  // id). Entry order is identical to the former pair<gain, id>
  // priority_queue (gain first, id tie-break) and all keys are
  // distinct. Claims only age upward (the tracker's gains are exact and
  // non-increasing), so a root whose claim matches its tracked gain
  // majorizes every other entry's true gain: it is the exact greedy
  // argmax under the key order. A stale root is re-keyed in place with
  // one sift-down — pop-and-reuse — and never re-counted against the
  // mask: the tracker already knows its residual gain.
  auto pack = [](uint64_t gain, uint32_t s) -> uint64_t {
    return (gain << 32) | s;
  };
  std::vector<uint64_t> heap;
  heap.reserve(system.num_sets());
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    const uint64_t gain = gains.gain(s);
    if (gain > 0) heap.push_back(pack(gain, s));
  }
  std::make_heap(heap.begin(), heap.end());

  std::vector<uint32_t> newly;
  while (uncovered.Any() && !heap.empty()) {
    const uint64_t top = heap.front();
    const uint32_t s = static_cast<uint32_t>(top);
    const uint64_t gain = gains.gain(s);
    ++result.work;
    ++result.sets_touched;
    if (gain == 0) {
      std::pop_heap(heap.begin(), heap.end());
      heap.pop_back();
      continue;
    }
    if (gain != (top >> 32)) {
      heap.front() = pack(gain, s);
      SiftDownRoot(heap);
      continue;
    }
    std::pop_heap(heap.begin(), heap.end());
    heap.pop_back();
    newly.clear();
    FilterInto(system.GetSet(s), uncovered, newly, kernel);
    MarkCovered(newly, uncovered, kernel);
    SC_DCHECK_EQ(newly.size(), gain);
    // The pick's own column entries zero its tracked gain too.
    gains.OnCovered(newly);
    result.cover.set_ids.push_back(s);
  }
  result.gain_updates = gains.gain_updates();
  return result;
}

}  // namespace streamcover
