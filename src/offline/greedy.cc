#include "offline/greedy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/cover_kernels.h"

namespace streamcover {

OfflineResult GreedySolver::Solve(const SetSystem& system) const {
  DynamicBitset all(system.num_elements(), true);
  return SolveTargets(system, all, kernel_);
}

double GreedySolver::Rho(uint32_t num_elements) const {
  return std::log(static_cast<double>(std::max(num_elements, 2u))) + 1.0;
}

OfflineResult GreedySolver::SolveTargets(const SetSystem& system,
                                         const DynamicBitset& targets,
                                         KernelPolicy kernel) {
  SC_CHECK_EQ(targets.size(), system.num_elements());
  OfflineResult result;
  DynamicBitset uncovered = targets;

  // Clear target bits for elements no set contains (uncoverable).
  {
    DynamicBitset coverable(system.num_elements());
    for (uint32_t s = 0; s < system.num_sets(); ++s) {
      for (uint32_t e : system.GetSet(s)) coverable.Set(e);
    }
    uncovered &= coverable;
  }

  // Flat max-heap of lazily deleted entries packed as (gain << 32 | set
  // id); the id doubles as the offset into the CSR storage that gains
  // are recomputed from. Entry order is identical to the former
  // pair<gain, id> priority_queue (gain first, id tie-break) and all
  // keys are distinct, so the pick sequence — and the returned cover —
  // is byte-identical; the flat layout just drops the node churn.
  auto pack = [](size_t gain, uint32_t s) -> uint64_t {
    return (static_cast<uint64_t>(gain) << 32) | s;
  };
  std::vector<uint64_t> heap;
  heap.reserve(system.num_sets());
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    const size_t gain = CountUncovered(system.GetSet(s), uncovered, kernel);
    if (gain > 0) heap.push_back(pack(gain, s));
  }
  std::make_heap(heap.begin(), heap.end());

  while (uncovered.Any() && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    const uint32_t s = static_cast<uint32_t>(heap.back());
    heap.pop_back();
    ++result.work;
    // Gains only decrease over time, so a popped entry whose recomputed
    // gain still beats the heap top is truly the best set right now.
    const size_t gain = CountUncovered(system.GetSet(s), uncovered, kernel);
    if (gain == 0) continue;
    if (!heap.empty() && gain < (heap.front() >> 32)) {
      heap.push_back(pack(gain, s));  // stale; re-queue with fresh gain
      std::push_heap(heap.begin(), heap.end());
      continue;
    }
    result.cover.set_ids.push_back(s);
    MarkCovered(system.GetSet(s), uncovered, kernel);
  }
  return result;
}

}  // namespace streamcover
