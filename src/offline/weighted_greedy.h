// Weighted SetCover (future-work direction the paper scopes out in
// Figure 1.3's caption — "(unweighted)"): each set carries a positive
// weight, minimize the total weight of a cover. Greedy by
// marginal-coverage-per-weight achieves H_n approximation [Chvatal'79].
// Shipping it offline makes the library usable on weighted workloads
// today and gives the streaming layer a drop-in rho-solver when a
// weighted streaming variant is explored.

#ifndef STREAMCOVER_OFFLINE_WEIGHTED_GREEDY_H_
#define STREAMCOVER_OFFLINE_WEIGHTED_GREEDY_H_

#include <vector>

#include "setsystem/cover.h"
#include "setsystem/set_system.h"
#include "util/cover_kernels.h"

namespace streamcover {

/// Result of a weighted cover computation.
struct WeightedCoverResult {
  Cover cover;
  double total_weight = 0.0;
};

/// Chvatal's greedy: repeatedly picks the set minimizing
/// weight / marginal-coverage. `weights` must be positive, one per set.
/// Elements no set contains are ignored.
WeightedCoverResult WeightedGreedyCover(
    const SetSystem& system, const std::vector<double>& weights,
    KernelPolicy kernel = KernelPolicy::kWord);

/// Exhaustive optimum for tests (m <= ~20).
WeightedCoverResult BruteForceWeightedCover(
    const SetSystem& system, const std::vector<double>& weights);

}  // namespace streamcover

#endif  // STREAMCOVER_OFFLINE_WEIGHTED_GREEDY_H_
