// Max k-Cover: given a budget of k sets, maximize the number of covered
// elements. This is the problem [SG09] actually solved to obtain the
// first streaming SetCover results (their SetCover algorithm runs
// Max k-Cover repeatedly), so the library ships it as a first-class
// offline primitive. Greedy achieves the optimal (1 - 1/e) factor
// [Nemhauser-Wolsey-Fisher].

#ifndef STREAMCOVER_OFFLINE_MAX_COVER_H_
#define STREAMCOVER_OFFLINE_MAX_COVER_H_

#include <cstdint>

#include "setsystem/cover.h"
#include "setsystem/set_system.h"
#include "util/cover_kernels.h"

namespace streamcover {

/// Result of a budgeted coverage maximization.
struct MaxCoverResult {
  Cover cover;              ///< at most `budget` set ids
  uint64_t covered = 0;     ///< elements covered by `cover`
};

/// Greedy Max k-Cover: picks up to `budget` sets, each maximizing the
/// marginal coverage; stops early if coverage is complete.
/// Guarantee: covered >= (1 - 1/e) * OPT_k.
MaxCoverResult GreedyMaxCover(const SetSystem& system, uint32_t budget,
                              KernelPolicy kernel = KernelPolicy::kWord);

/// Exhaustive optimum for tests (m <= ~20).
MaxCoverResult BruteForceMaxCover(const SetSystem& system, uint32_t budget);

}  // namespace streamcover

#endif  // STREAMCOVER_OFFLINE_MAX_COVER_H_
