#include "offline/max_cover.h"

#include <queue>
#include <utility>

#include "util/bitset.h"
#include "util/check.h"
#include "util/cover_kernels.h"

namespace streamcover {

MaxCoverResult GreedyMaxCover(const SetSystem& system, uint32_t budget,
                              KernelPolicy kernel) {
  MaxCoverResult result;
  DynamicBitset uncovered(system.num_elements(), true);

  // Lazy greedy, same structure as GreedySolver but budget-capped.
  using Entry = std::pair<size_t, uint32_t>;
  std::priority_queue<Entry> heap;
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    size_t size = system.SetSize(s);
    if (size > 0) heap.push({size, s});
  }
  while (result.cover.size() < budget && !heap.empty()) {
    auto [stale_gain, s] = heap.top();
    heap.pop();
    const size_t gain = CountUncovered(system.GetSet(s), uncovered, kernel);
    if (gain == 0) continue;
    if (!heap.empty() && gain < heap.top().first) {
      heap.push({gain, s});
      continue;
    }
    result.cover.set_ids.push_back(s);
    result.covered += gain;
    MarkCovered(system.GetSet(s), uncovered, kernel);
  }
  return result;
}

MaxCoverResult BruteForceMaxCover(const SetSystem& system, uint32_t budget) {
  const uint32_t m = system.num_sets();
  SC_CHECK_LE(m, 24u);
  MaxCoverResult best;
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    if (static_cast<uint32_t>(__builtin_popcount(mask)) > budget) continue;
    Cover c;
    for (uint32_t s = 0; s < m; ++s) {
      if (mask & (1u << s)) c.set_ids.push_back(s);
    }
    uint64_t covered = CoveredCount(system, c);
    if (covered > best.covered) {
      best.covered = covered;
      best.cover = std::move(c);
    }
  }
  return best;
}

}  // namespace streamcover
