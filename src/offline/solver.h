// Offline SetCover solver interface ("algOfflineSC" in the paper).
//
// iterSetCover (Figure 1.3) and algGeomSC (Figure 4.1) are parameterized
// by an offline solver with approximation factor rho: rho = ln n for the
// polynomial greedy, rho = 1 for the exact solver (the paper's
// "exponential computational power" regime — realized here as
// branch-and-bound with a node budget). Theorem 2.8's O(rho/delta)
// approximation inherits whichever rho the caller picks.

#ifndef STREAMCOVER_OFFLINE_SOLVER_H_
#define STREAMCOVER_OFFLINE_SOLVER_H_

#include <cstdint>
#include <string>

#include "setsystem/cover.h"
#include "setsystem/set_system.h"

namespace streamcover {

/// Result of one offline solve.
struct OfflineResult {
  Cover cover;
  /// True iff `cover` is provably optimal (exact solver within budget).
  bool proven_optimal = false;
  /// Solver-specific work counter (greedy: sets scanned; exact: B&B nodes).
  uint64_t work = 0;
  /// Gain-maintenance accounting (solvers that track residual gains;
  /// zero elsewhere): individual O(1) gain decrements applied, and
  /// candidate-gain evaluations performed. See
  /// setsystem/transposed_index.h for the semantics.
  uint64_t gain_updates = 0;
  uint64_t sets_touched = 0;
};

/// Interface for offline solvers used as algOfflineSC.
class OfflineSolver {
 public:
  virtual ~OfflineSolver() = default;

  /// Covers all coverable elements of `system`. Elements contained in no
  /// set are ignored (callers guarantee coverability where it matters).
  virtual OfflineResult Solve(const SetSystem& system) const = 0;

  /// The approximation factor rho as a function of the universe size.
  virtual double Rho(uint32_t num_elements) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace streamcover

#endif  // STREAMCOVER_OFFLINE_SOLVER_H_
