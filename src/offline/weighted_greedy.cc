#include "offline/weighted_greedy.h"

#include <limits>

#include "util/bitset.h"
#include "util/check.h"
#include "util/cover_kernels.h"

namespace streamcover {

WeightedCoverResult WeightedGreedyCover(const SetSystem& system,
                                        const std::vector<double>& weights,
                                        KernelPolicy kernel) {
  SC_CHECK_EQ(weights.size(), system.num_sets());
  for (double w : weights) SC_CHECK_GT(w, 0.0);

  WeightedCoverResult result;
  DynamicBitset uncovered(system.num_elements());
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    for (uint32_t e : system.GetSet(s)) uncovered.Set(e);
  }

  // Weighted gains are not monotone under arbitrary ratios the way the
  // lazy-heap trick requires proof for, so recompute exactly each round;
  // m is offline-scale here.
  while (uncovered.Any()) {
    uint32_t best = UINT32_MAX;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (uint32_t s = 0; s < system.num_sets(); ++s) {
      const size_t gain = CountUncovered(system.GetSet(s), uncovered, kernel);
      if (gain == 0) continue;
      double ratio = weights[s] / static_cast<double>(gain);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = s;
      }
    }
    SC_CHECK_NE(best, UINT32_MAX);  // uncovered is restricted to coverable
    result.cover.set_ids.push_back(best);
    result.total_weight += weights[best];
    MarkCovered(system.GetSet(best), uncovered, kernel);
  }
  return result;
}

WeightedCoverResult BruteForceWeightedCover(
    const SetSystem& system, const std::vector<double>& weights) {
  const uint32_t m = system.num_sets();
  SC_CHECK_LE(m, 24u);
  WeightedCoverResult best;
  best.total_weight = std::numeric_limits<double>::infinity();
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    Cover c;
    double weight = 0;
    for (uint32_t s = 0; s < m; ++s) {
      if (mask & (1u << s)) {
        c.set_ids.push_back(s);
        weight += weights[s];
      }
    }
    if (weight >= best.total_weight) continue;
    // Feasibility = covers everything coverable.
    DynamicBitset coverable(system.num_elements());
    for (uint32_t s = 0; s < m; ++s) {
      for (uint32_t e : system.GetSet(s)) coverable.Set(e);
    }
    DynamicBitset covered = CoverageMask(system, c);
    coverable.AndNot(covered);
    if (coverable.None()) {
      best.cover = std::move(c);
      best.total_weight = weight;
    }
  }
  return best;
}

}  // namespace streamcover
