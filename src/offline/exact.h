// Exact SetCover via branch-and-bound, rho = 1.
//
// Realizes the paper's "exponential computational power" offline solver
// on the instance sizes where it matters: the sampled sub-instances of
// iterSetCover and the Section 5/6 lower-bound gadgets. Techniques:
//   * dominance elimination at the root (subset sets are dropped),
//   * unit propagation (an uncovered element with one live candidate
//     forces that set),
//   * min-degree element branching, children ordered by residual gain,
//   * two lower bounds: ceil(residual / max set size) and a greedy
//     disjoint-witness packing bound,
//   * a node budget; the result reports whether optimality was proven.

#ifndef STREAMCOVER_OFFLINE_EXACT_H_
#define STREAMCOVER_OFFLINE_EXACT_H_

#include "offline/solver.h"

namespace streamcover {

/// Exact branch-and-bound offline solver.
class ExactSolver : public OfflineSolver {
 public:
  /// `max_nodes` caps the search; on exhaustion Solve returns the best
  /// incumbent with proven_optimal = false.
  explicit ExactSolver(uint64_t max_nodes = 50'000'000);

  OfflineResult Solve(const SetSystem& system) const override;

  double Rho(uint32_t /*num_elements*/) const override { return 1.0; }

  std::string name() const override { return "exact-bnb"; }

 private:
  uint64_t max_nodes_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_OFFLINE_EXACT_H_
