// The classic greedy SetCover algorithm, rho = ln n.
//
// Lazy-evaluation variant: a max-heap of (stale gain, set id); gains are
// only recomputed when a set is popped, which is correct because gains
// are monotonically non-increasing as the cover grows.

#ifndef STREAMCOVER_OFFLINE_GREEDY_H_
#define STREAMCOVER_OFFLINE_GREEDY_H_

#include "offline/solver.h"
#include "util/bitset.h"
#include "util/cover_kernels.h"

namespace streamcover {

/// Greedy offline solver (H_n <= ln n + 1 approximation).
class GreedySolver : public OfflineSolver {
 public:
  GreedySolver() = default;
  /// Selects the coverage-kernel twin for gain recomputation; results
  /// are identical either way.
  explicit GreedySolver(KernelPolicy kernel) : kernel_(kernel) {}

  OfflineResult Solve(const SetSystem& system) const override;

  double Rho(uint32_t num_elements) const override;

  std::string name() const override { return "greedy"; }

  /// Greedy cover of only the elements flagged in `targets`.
  /// Shared by solvers and baselines that cover residual ground sets.
  static OfflineResult SolveTargets(
      const SetSystem& system, const DynamicBitset& targets,
      KernelPolicy kernel = KernelPolicy::kWord);

 private:
  KernelPolicy kernel_ = KernelPolicy::kWord;
};

}  // namespace streamcover

#endif  // STREAMCOVER_OFFLINE_GREEDY_H_
